"""Fluent construction of DFAs.

:class:`DfaBuilder` lets applications define custom parsing rules — states,
symbol groups, transitions, emissions — and compiles them into an immutable
:class:`~repro.dfa.automaton.Dfa`.  Missing transitions can either default
to a designated invalid sink state (strict formats) or self-loop (lenient
formats), and unlisted byte values fall into a catch-all group, mirroring
the paper's ``*`` group in Table 1.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.dfa.automaton import Dfa, Emission, NUM_BYTE_VALUES
from repro.errors import DfaError

__all__ = ["DfaBuilder"]


class DfaBuilder:
    """Incrementally assemble a :class:`Dfa`.

    Example — a two-state automaton over ``a``/``b``::

        dfa = (DfaBuilder()
               .state("EVEN", accepting=True)
               .state("ODD")
               .group("flip", b"a")
               .catch_all("other")
               .transition("EVEN", "flip", "ODD", Emission.DATA)
               .transition("ODD", "flip", "EVEN", Emission.DATA)
               .transition("EVEN", "other", "EVEN", Emission.DATA)
               .transition("ODD", "other", "ODD", Emission.DATA)
               .start("EVEN")
               .build())
    """

    def __init__(self) -> None:
        self._states: list[str] = []
        self._accepting: set[str] = set()
        self._groups: list[str] = []
        self._group_bytes: dict[str, list[int]] = {}
        self._catch_all: str | None = None
        self._transitions: dict[tuple[str, str], tuple[str, Emission]] = {}
        self._start: str | None = None
        self._invalid: str | None = None

    # -- states ----------------------------------------------------------

    def state(self, name: str, accepting: bool = False) -> "DfaBuilder":
        """Declare a state.  Declaration order fixes state ids."""
        if name in self._states:
            raise DfaError(f"state {name!r} declared twice")
        self._states.append(name)
        if accepting:
            self._accepting.add(name)
        return self

    def invalid_state(self, name: str) -> "DfaBuilder":
        """Declare (or designate) the invalid sink state.

        All unspecified transitions lead here, and all transitions out of it
        return to it.  The pipeline uses it to detect format violations
        (paper §4.3, *Validating format*).
        """
        if name not in self._states:
            self.state(name)
        self._invalid = name
        return self

    def start(self, name: str) -> "DfaBuilder":
        """Designate the start state."""
        if name not in self._states:
            raise DfaError(f"unknown start state {name!r}")
        self._start = name
        return self

    # -- symbol groups -----------------------------------------------------

    def group(self, name: str, symbols: bytes | Iterable[int]) -> "DfaBuilder":
        """Declare a symbol group covering the given byte values."""
        if name in self._groups:
            raise DfaError(f"group {name!r} declared twice")
        byte_list = [b if isinstance(b, int) else b[0] for b in
                     (symbols if not isinstance(symbols, bytes)
                      else list(symbols))]
        for byte in byte_list:
            if not 0 <= byte < NUM_BYTE_VALUES:
                raise DfaError(f"byte value {byte} out of range")
        self._groups.append(name)
        self._group_bytes[name] = byte_list
        return self

    def catch_all(self, name: str) -> "DfaBuilder":
        """Declare the catch-all group for all unassigned byte values."""
        if self._catch_all is not None:
            raise DfaError("catch-all group declared twice")
        if name in self._groups:
            raise DfaError(f"group {name!r} declared twice")
        self._groups.append(name)
        self._group_bytes[name] = []
        self._catch_all = name
        return self

    # -- transitions ---------------------------------------------------------

    def transition(self, from_state: str, group: str, to_state: str,
                   emission: Emission = Emission.DATA) -> "DfaBuilder":
        """Define the transition for (state, group) with its emission."""
        if from_state not in self._states:
            raise DfaError(f"unknown state {from_state!r}")
        if to_state not in self._states:
            raise DfaError(f"unknown state {to_state!r}")
        if group not in self._groups:
            raise DfaError(f"unknown group {group!r}")
        key = (from_state, group)
        if key in self._transitions:
            raise DfaError(
                f"transition for state {from_state!r} / group {group!r} "
                f"defined twice")
        self._transitions[key] = (to_state, emission)
        return self

    # -- compilation -------------------------------------------------------

    def build(self) -> Dfa:
        """Validate and compile into an immutable :class:`Dfa`."""
        if not self._states:
            raise DfaError("no states declared")
        if not self._groups:
            raise DfaError("no symbol groups declared")
        if self._start is None:
            raise DfaError("no start state designated")
        if self._catch_all is None:
            covered = sum(len(v) for v in self._group_bytes.values())
            if covered < NUM_BYTE_VALUES:
                raise DfaError(
                    "without a catch-all group every byte value must be "
                    "assigned to a group")

        state_index = {name: i for i, name in enumerate(self._states)}
        group_index = {name: i for i, name in enumerate(self._groups)}

        symbol_groups = np.full(
            NUM_BYTE_VALUES,
            group_index[self._catch_all] if self._catch_all is not None else 0,
            dtype=np.uint8)
        assigned: dict[int, str] = {}
        for name, byte_values in self._group_bytes.items():
            for byte in byte_values:
                if byte in assigned:
                    raise DfaError(
                        f"byte {byte:#04x} assigned to both group "
                        f"{assigned[byte]!r} and {name!r}")
                assigned[byte] = name
                symbol_groups[byte] = group_index[name]

        num_states = len(self._states)
        num_groups = len(self._groups)
        transitions = np.zeros((num_groups, num_states), dtype=np.uint8)
        emissions = np.zeros((num_states, num_groups), dtype=np.uint8)
        default_target = (state_index[self._invalid]
                          if self._invalid is not None else None)
        for g, gname in enumerate(self._groups):
            for s, sname in enumerate(self._states):
                entry = self._transitions.get((sname, gname))
                if entry is None:
                    if default_target is None:
                        raise DfaError(
                            f"missing transition for state {sname!r} / "
                            f"group {gname!r} and no invalid state declared")
                    transitions[g, s] = default_target
                    emissions[s, g] = int(Emission.CONTROL)
                else:
                    to_state, emission = entry
                    transitions[g, s] = state_index[to_state]
                    emissions[s, g] = int(emission)
        if self._invalid is not None:
            inv = state_index[self._invalid]
            # Force the invalid state to be a sink regardless of user input.
            # Symbols consumed inside the sink are not record content.
            transitions[:, inv] = inv
            emissions[inv, :] = int(Emission.COMMENT)

        return Dfa(
            state_names=tuple(self._states),
            symbol_groups=symbol_groups,
            group_names=tuple(self._groups),
            transitions=transitions,
            emissions=emissions,
            start_state=state_index[self._start],
            accepting=frozenset(state_index[s] for s in self._accepting),
            invalid_state=default_target,
        )
