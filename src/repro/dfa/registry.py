"""Registry of every automaton the distribution ships by name.

The proof tier in :mod:`repro.analysis.dfaproofs` sweeps this table: for
each shipped automaton it machine-checks that minimisation preserves
behaviour (:func:`repro.dfa.minimize.equivalent` against the canonical
form), that canonicalisation is idempotent, that the two partition
engines (Hopcroft and the data-parallel refinement) agree, and that no
two distinct entries are behaviourally equivalent — the registry is the
ground truth for "which dialects exist" that those proofs quantify over.

Factories, not instances: a registry import must stay cheap, and the
proof tier wants freshly built automata (not canonical-cache aliases).
"""

from __future__ import annotations

from typing import Callable

from repro.dfa.automaton import Dfa
from repro.dfa.csv import dialect_dfa, rfc4180_dfa
from repro.dfa.dialects import Dialect
from repro.dfa.logformats import common_log_format_dfa, extended_log_format_dfa

__all__ = ["REGISTERED_AUTOMATA", "registered_dfas"]


#: name -> zero-argument factory for every shipped automaton.  Names are
#: stable identifiers (used in proof-failure messages and docs).
REGISTERED_AUTOMATA: dict[str, Callable[[], Dfa]] = {
    "rfc4180": rfc4180_dfa,
    "csv": lambda: dialect_dfa(Dialect.csv()),
    "tsv": lambda: dialect_dfa(Dialect.tsv()),
    "pipe": lambda: dialect_dfa(Dialect.pipe()),
    "csv-comments": lambda: dialect_dfa(Dialect.csv_with_comments()),
    "common-log": common_log_format_dfa,
    "extended-log": extended_log_format_dfa,
}


def registered_dfas() -> dict[str, Dfa]:
    """Freshly built ``name -> Dfa`` for every registered automaton."""
    return {name: factory() for name, factory in REGISTERED_AUTOMATA.items()}
