"""The DFA data model driving ParPaRaw's parsing.

A :class:`Dfa` bundles three tables:

* ``symbol_groups`` — a 256-entry map collapsing all byte values with
  identical transition behaviour into *symbol groups* (paper §4.5).  The
  table-compression idea keeps the transition table tiny (one row per group,
  as in the paper's Table 1) so it fits into registers / shared memory;
* ``transitions[group, state] -> state`` — the state-transition table.
  Rows are symbol groups (matching the paper's layout, which gives coalesced
  access to all state transitions of a read symbol);
* ``emissions[state, group] -> Emission`` — a Mealy-style output table
  classifying every consumed symbol given the state it was read *in*:
  data, field delimiter, record delimiter, or control (discarded).

The split between transition and emission is what lets the pipeline tag
symbols with bitmap indexes in a single pass once the chunk's start state is
known (paper §3.1, last paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterable, Sequence

import numpy as np

from repro.errors import DfaError

__all__ = ["Dfa", "Emission"]

NUM_BYTE_VALUES = 256


class Emission(IntEnum):
    """Classification of one consumed symbol (paper §3.1 bitmap indexes)."""

    #: The symbol is part of the current field's value.
    DATA = 0
    #: The symbol delimits a field (within the current record).
    FIELD_DELIMITER = 1
    #: The symbol delimits a record (and implicitly its last field).
    RECORD_DELIMITER = 2
    #: The symbol is a control symbol *within* a record (quote, escape
    #: introducer, CR of a CRLF…); discarded, but it still marks the
    #: presence of record content (a lone ``\"\"`` is a record).
    CONTROL = 3
    #: The symbol belongs to a comment/directive line or is padding;
    #: discarded and does NOT constitute record content.
    COMMENT = 4


@dataclass(frozen=True)
class Dfa:
    """An immutable deterministic finite automaton with emissions.

    Instances are typically produced by :class:`repro.dfa.builder.DfaBuilder`
    or the factory functions in :mod:`repro.dfa.csv` /
    :mod:`repro.dfa.logformats`; the constructor validates shape and range
    invariants so downstream vectorised code can index fearlessly.
    """

    #: Human-readable state names; index == state id.
    state_names: tuple[str, ...]
    #: ``(256,)`` uint8 array mapping byte value -> symbol group.
    symbol_groups: np.ndarray
    #: Human-readable group names; index == group id.
    group_names: tuple[str, ...]
    #: ``(num_groups, num_states)`` uint8 array: next state.
    transitions: np.ndarray
    #: ``(num_states, num_groups)`` uint8 array of :class:`Emission` codes.
    emissions: np.ndarray
    #: State the sequential automaton starts in.
    start_state: int
    #: States in which the input may validly end.
    accepting: frozenset[int]
    #: The designated sink state for invalid input, or ``None``.
    invalid_state: int | None = None

    def __post_init__(self) -> None:
        num_states = len(self.state_names)
        num_groups = len(self.group_names)
        if num_states == 0:
            raise DfaError("a DFA needs at least one state")
        if num_groups == 0:
            raise DfaError("a DFA needs at least one symbol group")
        if self.symbol_groups.shape != (NUM_BYTE_VALUES,):
            raise DfaError("symbol_groups must map all 256 byte values")
        if self.symbol_groups.max(initial=0) >= num_groups:
            raise DfaError("symbol_groups references an unknown group")
        if self.transitions.shape != (num_groups, num_states):
            raise DfaError(
                f"transitions must be (num_groups={num_groups}, "
                f"num_states={num_states}), got {self.transitions.shape}")
        if self.transitions.max(initial=0) >= num_states:
            raise DfaError("transition table references an unknown state")
        if self.emissions.shape != (num_states, num_groups):
            raise DfaError(
                f"emissions must be (num_states={num_states}, "
                f"num_groups={num_groups}), got {self.emissions.shape}")
        if self.emissions.max(initial=0) > max(Emission):
            raise DfaError("emission table contains an unknown code")
        if not 0 <= self.start_state < num_states:
            raise DfaError("start_state out of range")
        for state in self.accepting:
            if not 0 <= state < num_states:
                raise DfaError("accepting state out of range")
        if self.invalid_state is not None:
            if not 0 <= self.invalid_state < num_states:
                raise DfaError("invalid_state out of range")
            row = self.transitions[:, self.invalid_state]
            if not np.all(row == self.invalid_state):
                raise DfaError("invalid_state must be a sink state")
        # Freeze the arrays so the dataclass is truly immutable.
        self.symbol_groups.setflags(write=False)
        self.transitions.setflags(write=False)
        self.emissions.setflags(write=False)

    # -- basic properties ----------------------------------------------

    @property
    def num_states(self) -> int:
        return len(self.state_names)

    @property
    def num_groups(self) -> int:
        return len(self.group_names)

    def state_index(self, name: str) -> int:
        """Resolve a state name to its id."""
        try:
            return self.state_names.index(name)
        except ValueError:
            raise DfaError(f"unknown state {name!r}") from None

    def group_of(self, byte: int) -> int:
        """Symbol group of one byte value."""
        if not 0 <= byte < NUM_BYTE_VALUES:
            raise DfaError(f"byte value {byte} out of range")
        return int(self.symbol_groups[byte])

    # -- scalar simulation (reference semantics) -------------------------

    def step(self, state: int, byte: int) -> tuple[int, Emission]:
        """Consume one byte: return (next state, emission of this byte)."""
        group = self.group_of(byte)
        emission = Emission(int(self.emissions[state, group]))
        next_state = int(self.transitions[group, state])
        return next_state, emission

    def simulate(self, data: bytes | bytearray | memoryview | np.ndarray,
                 start_state: int | None = None) -> tuple[int, list[Emission]]:
        """Run the automaton over ``data``; return final state + emissions.

        This is the sequential reference semantics every parallel code path
        is tested against.
        """
        state = self.start_state if start_state is None else start_state
        emissions: list[Emission] = []
        buf = np.frombuffer(bytes(data), dtype=np.uint8) \
            if not isinstance(data, np.ndarray) else data
        for byte in buf:
            state, emission = self.step(state, int(byte))
            emissions.append(emission)
        return state, emissions

    def transition_vector(
            self, data: bytes | bytearray | np.ndarray) -> tuple[int, ...]:
        """State-transition vector of a chunk (paper §3.1).

        Entry ``i`` is the state the automaton ends in after reading all of
        ``data`` having started in state ``i`` — the result of simulating
        one DFA instance per state.
        """
        buf = np.frombuffer(bytes(data), dtype=np.uint8) \
            if not isinstance(data, np.ndarray) else data
        vector = np.arange(self.num_states, dtype=np.uint8)
        for byte in buf:
            group = self.symbol_groups[byte]
            vector = self.transitions[group, vector]
        return tuple(int(v) for v in vector)

    def is_accepting(self, state: int) -> bool:
        """Whether the input may validly end in ``state``."""
        return state in self.accepting

    # -- vectorised views -----------------------------------------------

    def groups_of(self, data: np.ndarray) -> np.ndarray:
        """Vectorised byte -> symbol-group lookup."""
        if data.dtype != np.uint8:
            raise DfaError("groups_of expects a uint8 array")
        return self.symbol_groups[data]

    def with_padding_group(self) -> "Dfa":
        """Return a DFA extended with a synthetic no-op *padding* group.

        Chunking pads the input to a multiple of the chunk size; padding
        bytes must neither transition the automaton nor emit anything.  The
        padding group's transition row is the identity and its emission is
        CONTROL.  The group claims no byte value (its ``symbol_groups``
        entries are unchanged); the pipeline assigns it explicitly to pad
        positions.
        """
        identity_row = np.arange(self.num_states,
                                 dtype=self.transitions.dtype)[None, :]
        transitions = np.vstack([self.transitions, identity_row])
        pad_emissions = np.full((self.num_states, 1), int(Emission.COMMENT),
                                dtype=self.emissions.dtype)
        emissions = np.hstack([self.emissions, pad_emissions])
        return Dfa(
            state_names=self.state_names,
            symbol_groups=self.symbol_groups.copy(),
            group_names=self.group_names + ("PAD",),
            transitions=transitions,
            emissions=emissions,
            start_state=self.start_state,
            accepting=self.accepting,
            invalid_state=self.invalid_state,
        )

    # -- pretty printing -------------------------------------------------

    def format_transition_table(self) -> str:
        """Render the transition table as in the paper's Table 1."""
        header = ["group"] + list(self.state_names)
        rows = [header]
        for g, gname in enumerate(self.group_names):
            row = [gname]
            for s in range(self.num_states):
                row.append(self.state_names[int(self.transitions[g, s])])
            rows.append(row)
        widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
        lines = []
        for r in rows:
            lines.append("  ".join(cell.ljust(widths[c])
                                   for c, cell in enumerate(r)))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Dfa(states={list(self.state_names)}, "
                f"groups={list(self.group_names)}, "
                f"start={self.state_names[self.start_state]})")
