"""DFA minimisation, canonical forms, and dialect equivalence.

Table size is what caps the strided kernels: the precomposed k-gram
tables of :mod:`repro.kernels` cost ``G^k · S`` cells, so every state or
symbol group the automaton does not *need* multiplies the footprint of
every stride.  This module computes the coarsest behaviour-preserving
quotient of a :class:`~repro.dfa.automaton.Dfa` — Mealy-aware state
minimisation plus *group compaction* (byte groups with identical
transition and emission columns merge) — and renders it in a canonical
form, so that

* the pipeline can run every sweep on the smallest equivalent automaton
  (unlocking stride k=8 for small dialects, see ROADMAP item 3), and
* behaviourally equivalent automata — sniffer-built vs hand-built,
  however their states happen to be numbered — produce *bit-identical*
  canonical tables, which is what lets the kernel cache key tables
  behaviourally (:func:`repro.kernels.cache.dfa_fingerprint`).

Two partition-refinement engines compute the same state partition:

* :func:`hopcroft_partition` — the classic splitter-worklist refinement
  (Hopcroft's algorithm; at the ≤32-state scale of dialect automata we
  enqueue both halves of a split rather than only the smaller one — the
  asymptotic trick matters at millions of states, not here);
* :func:`parallel_partition` — the data-parallel formulation from the
  "Massively Parallel Algorithms for DFA Minimisation" line of work
  (PAPERS.md): each round builds a per-state signature of class labels
  and *densely relabels* it with a sort + boundary-flag + prefix-scan
  pass (:func:`repro.scan.numpy_scan.inclusive_sum`), exactly the
  scan-shaped primitive the rest of the pipeline is built on.  Rounds
  are vectorised over all states; at most ``S`` rounds reach the fixed
  point.

Both are Mealy-aware: the seed partition separates states by their full
emission row, their accepting flag, and whether they are the INV sink,
so the quotient preserves per-byte symbol classification, end-of-input
acceptance, and invalid-input detection bit for bit.

On top of the quotient, :func:`equivalent` / :func:`included` decide
byte-level behavioural equivalence and inclusion of two automata by
product-automaton refinement — the proof obligations of the parlint-style
``dfa-proofs`` tier (:mod:`repro.analysis.dfaproofs`).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

from repro.dfa.automaton import Dfa, NUM_BYTE_VALUES
from repro.scan.numpy_scan import inclusive_sum

__all__ = [
    "Minimization",
    "hopcroft_partition",
    "parallel_partition",
    "same_partition",
    "minimize",
    "canonicalize",
    "is_canonical",
    "structural_digest",
    "equivalent",
    "included",
    "MAX_CANONICAL_CACHE",
]


@dataclass(frozen=True)
class Minimization:
    """A DFA together with its canonical minimised form and the maps
    between the two state/group spaces.

    The canonical form is fully determined by the source automaton's
    *behaviour*: states are merged by Mealy-aware partition refinement,
    states unreachable from the start state are pruned, byte groups with
    identical transition+emission columns are merged, groups are ordered
    by the smallest byte value they claim (byteless groups — e.g. the
    synthetic PAD group — keep their relative order, after all
    byte-claiming groups), and states are renumbered breadth-first from
    the start state over that group order.  Behaviourally equivalent
    automata therefore canonicalise to bit-identical tables (up to the
    human-readable names), and :func:`canonicalize` is idempotent — a
    canonical form is its own canonical form.
    """

    #: The automaton that was minimised.
    source: Dfa
    #: The canonical minimised automaton (start state is always 0).
    dfa: Dfa
    #: ``(source.num_states,)`` int16 — canonical state of each source
    #: state; ``-1`` for states unreachable from the start state.
    state_map: np.ndarray
    #: ``(dfa.num_states,)`` int16 — smallest source state in each
    #: canonical state's class (maps sweep results back to source ids).
    state_rep: np.ndarray
    #: ``(source.num_groups,)`` int16 — canonical group of each source
    #: group.
    group_map: np.ndarray
    #: ``(dfa.num_groups,)`` int16 — smallest source group in each
    #: canonical group's class.
    group_rep: np.ndarray

    @property
    def states_merged(self) -> int:
        """Source states eliminated (merged or pruned as unreachable)."""
        return self.source.num_states - self.dfa.num_states

    @property
    def groups_merged(self) -> int:
        """Source symbol groups eliminated by column compaction."""
        return self.source.num_groups - self.dfa.num_groups


# -- partition refinement ----------------------------------------------------

def _dense_relabel(signatures: np.ndarray) -> np.ndarray:
    """Dense class ids (0..C-1) for the rows of ``signatures``.

    The scan-shaped relabelling at the heart of the data-parallel
    formulation: lexsort the rows, flag every boundary where a sorted
    row differs from its predecessor, prefix-scan the flags into class
    ids, and scatter them back through the sort permutation.  Equal rows
    get equal ids; ids are dense.
    """
    order = np.lexsort(signatures.T[::-1])
    sorted_rows = signatures[order]
    flags = np.zeros(len(signatures), dtype=np.int64)
    if len(signatures) > 1:
        flags[1:] = np.any(sorted_rows[1:] != sorted_rows[:-1], axis=1)
    labels = np.empty(len(signatures), dtype=np.int64)
    labels[order] = inclusive_sum(flags)
    return labels


def _seed_labels(dfa: Dfa) -> np.ndarray:
    """The Mealy-aware initial partition.

    States start in the same class iff they agree on the full emission
    row (per-symbol classification), the accepting flag (end-of-input
    acceptance), and INV-ness (the sink is always its own class, so
    ``invalid_position`` semantics survive the quotient).
    """
    accepting = np.zeros(dfa.num_states, dtype=np.int64)
    if dfa.accepting:
        accepting[sorted(dfa.accepting)] = 1
    invalid = np.zeros(dfa.num_states, dtype=np.int64)
    if dfa.invalid_state is not None:
        invalid[dfa.invalid_state] = 1
    signatures = np.column_stack([
        dfa.emissions.astype(np.int64), accepting, invalid])
    return _dense_relabel(signatures)


def parallel_partition(dfa: Dfa) -> np.ndarray:
    """Coarsest Mealy-consistent partition, data-parallel formulation.

    Each round builds, for every state, the signature ``(own class,
    class of the successor under every group)`` — one vectorised gather
    per group — and densely relabels it with the sort+scan pass of
    :func:`_dense_relabel`.  A round that creates no new class is the
    fixed point.  Returns ``(num_states,)`` dense class labels.
    """
    labels = _seed_labels(dfa)
    num_classes = int(labels.max()) + 1
    while True:  # parlint: disable=PPR401 -- <= num_states refinement rounds, each a vectorised relabel over all states
        signatures = np.concatenate(
            [labels[None, :], labels[dfa.transitions]], axis=0).T
        labels = _dense_relabel(signatures)
        refined = int(labels.max()) + 1
        if refined == num_classes:
            return labels
        num_classes = refined


def hopcroft_partition(dfa: Dfa) -> np.ndarray:
    """Coarsest Mealy-consistent partition, splitter-worklist refinement.

    The sequential reference the parallel formulation is tested against.
    Returns ``(num_states,)`` dense class labels describing the same
    partition as :func:`parallel_partition` (label values may differ;
    compare with :func:`same_partition`).
    """
    num_states, num_groups = dfa.num_states, dfa.num_groups
    preimage: list[list[list[int]]] = [
        [[] for _ in range(num_states)] for _ in range(num_groups)]
    for g in range(num_groups):
        for source, target in enumerate(dfa.transitions[g]):
            preimage[g][int(target)].append(source)

    seed = _seed_labels(dfa)
    blocks: dict[int, set[int]] = {}
    for state, label in enumerate(seed):
        blocks.setdefault(int(label), set()).add(state)
    partition = list(blocks.values())
    work: deque = deque(
        (frozenset(block), g) for block in partition
        for g in range(num_groups))
    while work:  # parlint: disable=PPR401 -- splitter worklist over <= 32-state dialect automata; configuration-time only
        splitter, g = work.popleft()
        hits = {source for target in splitter for source in
                preimage[g][target]}
        refined: list[set[int]] = []
        for block in partition:
            inside = block & hits
            outside = block - hits
            if inside and outside:
                refined.extend((inside, outside))
                for gg in range(num_groups):
                    work.append((frozenset(inside), gg))
                    work.append((frozenset(outside), gg))
            else:
                refined.append(block)
        partition = refined

    labels = np.empty(num_states, dtype=np.int64)
    for index, block in enumerate(sorted(partition, key=min)):
        for state in block:
            labels[state] = index
    return labels


def same_partition(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether two label vectors describe the same partition."""
    if a.shape != b.shape:
        return False
    pairs = np.column_stack([a, b])
    return int(_dense_relabel(pairs).max()) == max(int(a.max()),
                                                   int(b.max()))


# -- canonical construction --------------------------------------------------

def _canonical_from_labels(dfa: Dfa, labels: np.ndarray) -> Minimization:
    """Render a state partition as the canonical minimised automaton."""
    num_classes = int(labels.max()) + 1
    # Smallest source state of each class: the class representative.
    rep = np.full(num_classes, dfa.num_states, dtype=np.int64)
    np.minimum.at(rep, labels, np.arange(dfa.num_states))
    # Class-level transition table (well-defined: the partition is
    # transition-consistent) and emission table (consistent by the seed).
    class_trans = labels[dfa.transitions[:, rep]]        # (G, C)
    class_emis = dfa.emissions[rep, :]                   # (C, G)

    # Prune classes unreachable from the start class.
    start_class = int(labels[dfa.start_state])
    reachable = np.zeros(num_classes, dtype=bool)
    reachable[start_class] = True
    frontier = [start_class]
    while frontier:  # parlint: disable=PPR401 -- BFS over <= 32 state classes, configuration-time only
        for target in class_trans[:, frontier.pop()]:
            if not reachable[target]:
                reachable[target] = True
                frontier.append(int(target))
    kept = np.flatnonzero(reachable)

    # Group compaction: merge groups with identical transition+emission
    # columns over the surviving classes.
    merged_of: dict[tuple[bytes, bytes], int] = {}
    members: list[list[int]] = []
    group_merge = np.empty(dfa.num_groups, dtype=np.int64)
    for g in range(dfa.num_groups):  # parlint: disable=PPR401 -- one signature per symbol group (<= ~10), configuration-time only
        key = (class_trans[g, kept].tobytes(), class_emis[kept, g].tobytes())
        index = merged_of.setdefault(key, len(members))
        if index == len(members):
            members.append([g])
        else:
            members[index].append(g)
        group_merge[g] = index

    # Canonical group order: by the smallest byte value the merged group
    # claims; groups claiming no byte (synthetic, e.g. PAD) come last in
    # source order.  The order is intrinsic to the byte behaviour, so
    # equivalent automata agree on it.
    merged_bytes = group_merge[dfa.symbol_groups]
    def group_key(index: int) -> tuple[int, int]:
        claimed = np.flatnonzero(merged_bytes == index)
        if claimed.size:
            return (int(claimed[0]), 0)
        return (NUM_BYTE_VALUES, members[index][0])
    group_order = sorted(range(len(members)), key=group_key)
    canon_group = np.empty(len(members), dtype=np.int64)
    for new_g, merged_index in enumerate(group_order):
        canon_group[merged_index] = new_g
    group_map = canon_group[group_merge]
    lead_groups = [members[m][0] for m in group_order]

    # Canonical state order: BFS from the start class over the canonical
    # group order (start state is therefore always 0).
    state_order: list[int] = []
    placed = np.zeros(num_classes, dtype=bool)
    placed[start_class] = True
    queue: deque = deque([start_class])
    while queue:  # parlint: disable=PPR401 -- BFS over <= 32 state classes, configuration-time only
        cls = queue.popleft()
        state_order.append(cls)
        for g in lead_groups:
            target = int(class_trans[g, cls])
            if not placed[target]:
                placed[target] = True
                queue.append(target)
    canon_state = np.full(num_classes, -1, dtype=np.int64)
    for new_s, cls in enumerate(state_order):
        canon_state[cls] = new_s

    num_canon_states = len(state_order)
    num_canon_groups = len(members)
    transitions = np.empty((num_canon_groups, num_canon_states),
                           dtype=np.uint8)
    emissions = np.empty((num_canon_states, num_canon_groups),
                         dtype=np.uint8)
    for new_g, g in enumerate(lead_groups):  # parlint: disable=PPR401 -- canonical table assembly over <= ~10 groups, configuration-time only
        transitions[new_g] = canon_state[class_trans[g, state_order]]
        emissions[:, new_g] = class_emis[state_order, g]

    member_states: list[list[int]] = [[] for _ in range(num_classes)]
    for state in range(dfa.num_states):
        member_states[int(labels[state])].append(state)
    state_names = tuple(
        "+".join(dfa.state_names[s] for s in member_states[cls])
        for cls in state_order)
    group_names = tuple(
        "+".join(dfa.group_names[g] for g in members[m])
        for m in group_order)
    accepting = frozenset(
        new_s for new_s, cls in enumerate(state_order)
        if int(rep[cls]) in dfa.accepting)
    invalid_state = None
    if dfa.invalid_state is not None:
        invalid_class = int(labels[dfa.invalid_state])
        if reachable[invalid_class]:
            invalid_state = int(canon_state[invalid_class])

    canonical = Dfa(
        state_names=state_names,
        symbol_groups=group_map[dfa.symbol_groups].astype(np.uint8),
        group_names=group_names,
        transitions=transitions,
        emissions=emissions,
        start_state=0,
        accepting=accepting,
        invalid_state=invalid_state,
    )
    state_map = canon_state[labels].astype(np.int16)
    state_rep = rep[state_order].astype(np.int16)
    group_rep = np.array([members[m][0] for m in group_order],
                         dtype=np.int16)
    return Minimization(
        source=dfa,
        dfa=canonical,
        state_map=state_map,
        state_rep=state_rep,
        group_map=group_map.astype(np.int16),
        group_rep=group_rep,
    )


def minimize(dfa: Dfa, *, method: str = "parallel") -> Minimization:
    """Minimise ``dfa`` into its canonical form (see :class:`Minimization`).

    ``method`` selects the partition engine — ``"parallel"`` (the
    scan-shaped production path) or ``"hopcroft"`` (the sequential
    reference); both produce the same canonical automaton.
    """
    if method == "parallel":
        labels = parallel_partition(dfa)
    elif method == "hopcroft":
        labels = hopcroft_partition(dfa)
    else:
        raise ValueError(f"unknown minimisation method {method!r}")
    return _canonical_from_labels(dfa, labels)


# -- cached canonicalisation -------------------------------------------------

#: Canonicalisations kept per process before LRU eviction (one entry per
#: distinct automaton ever parsed; dialect automata are a handful).
MAX_CANONICAL_CACHE = 64

_canon_lock = threading.Lock()
_canon_cache: "OrderedDict[str, Minimization]" = OrderedDict()


def structural_digest(dfa: Dfa) -> str:
    """Digest of everything observable about ``dfa``, bit for bit."""
    digest = hashlib.sha1()
    digest.update(repr((dfa.state_names, dfa.group_names, dfa.start_state,
                        sorted(dfa.accepting),
                        dfa.invalid_state)).encode("utf-8"))
    digest.update(dfa.symbol_groups.tobytes())
    digest.update(dfa.transitions.tobytes())
    digest.update(dfa.emissions.tobytes())
    return digest.hexdigest()


def canonicalize(dfa: Dfa) -> Minimization:
    """The canonical minimisation of ``dfa``, computed once per process.

    Thread-safe LRU keyed on the full structural digest; the pipeline
    calls this per parse, so the refinement runs once per distinct
    automaton and every later parse pays one hash.
    """
    key = structural_digest(dfa)
    with _canon_lock:
        cached = _canon_cache.get(key)
        if cached is not None:
            _canon_cache.move_to_end(key)
            return cached
    result = minimize(dfa)
    with _canon_lock:
        _canon_cache[key] = result
        _canon_cache.move_to_end(key)
        while len(_canon_cache) > MAX_CANONICAL_CACHE:
            _canon_cache.popitem(last=False)
    return result


def is_canonical(dfa: Dfa) -> bool:
    """Whether ``dfa`` is its own canonical form (tables and maps; the
    human-readable names are not compared)."""
    canonical = canonicalize(dfa).dfa
    return (canonical.num_states == dfa.num_states
            and canonical.num_groups == dfa.num_groups
            and canonical.start_state == dfa.start_state
            and canonical.invalid_state == dfa.invalid_state
            and canonical.accepting == dfa.accepting
            and np.array_equal(canonical.symbol_groups, dfa.symbol_groups)
            and np.array_equal(canonical.transitions, dfa.transitions)
            and np.array_equal(canonical.emissions, dfa.emissions))


# -- equivalence / inclusion (product-automaton refinement) ------------------

def _byte_tables(dfa: Dfa) -> tuple[np.ndarray, np.ndarray]:
    """Byte-level views: ``(transitions (256, S), emissions (S, 256))``."""
    return (dfa.transitions[dfa.symbol_groups],
            dfa.emissions[:, dfa.symbol_groups])


def equivalent(a: Dfa, b: Dfa) -> bool:
    """Byte-level behavioural equivalence.

    Explores the reachable pairs of the product automaton (BFS over
    state pairs, vectorised over all 256 byte values per pair) and
    requires every pair to agree on INV-ness, the accepting flag, and
    the emission of every byte.  Equivalent automata parse every input
    identically: same symbol classification, same invalid position, same
    end-of-input acceptance.  Synthetic groups claiming no byte value
    (e.g. the padding group) are invisible to this check.
    """
    trans_a, emis_a = _byte_tables(a)
    trans_b, emis_b = _byte_tables(b)
    start = (a.start_state, b.start_state)
    seen = {start}
    stack = [start]
    while stack:  # parlint: disable=PPR401 -- product BFS over <= S_a * S_b state pairs, configuration-time only
        s, t = stack.pop()
        if (s == a.invalid_state) != (t == b.invalid_state):
            return False
        if (s in a.accepting) != (t in b.accepting):
            return False
        if not np.array_equal(emis_a[s], emis_b[t]):
            return False
        pairs = np.unique(
            np.column_stack([trans_a[:, s], trans_b[:, t]]), axis=0)
        for s2, t2 in pairs:
            pair = (int(s2), int(t2))
            if pair not in seen:
                seen.add(pair)
                stack.append(pair)
    return True


def included(a: Dfa, b: Dfa) -> bool:
    """Dialect inclusion: ``b`` parses everything ``a`` parses, identically.

    Along every input that ``a`` considers valid (never transitions into
    ``a``'s INV sink), ``b`` must stay valid too, classify every symbol
    with the same emission, and accept end-of-input whenever ``a``
    accepts it.  On inputs ``a`` rejects, ``b`` is unconstrained — that
    is where a lenient dialect may accept more.  ``equivalent(a, b)``
    implies inclusion both ways; the converse need not hold.
    """
    trans_a, emis_a = _byte_tables(a)
    trans_b, emis_b = _byte_tables(b)
    if a.start_state == a.invalid_state:
        return True   # `a` accepts nothing at all
    start = (a.start_state, b.start_state)
    seen = {start}
    stack = [start]
    while stack:  # parlint: disable=PPR401 -- product BFS over <= S_a * S_b state pairs, configuration-time only
        s, t = stack.pop()
        if t == b.invalid_state:
            return False
        if s in a.accepting and t not in b.accepting:
            return False
        next_a = trans_a[:, s]
        valid = np.ones(NUM_BYTE_VALUES, dtype=bool) \
            if a.invalid_state is None else next_a != a.invalid_state
        if not np.array_equal(emis_a[s][valid], emis_b[t][valid]):
            return False
        pairs = np.unique(np.column_stack(
            [next_a[valid], trans_b[:, t][valid]]), axis=0)
        for s2, t2 in pairs:
            pair = (int(s2), int(t2))
            if pair not in seen:
                seen.add(pair)
                stack.append(pair)
    return True
