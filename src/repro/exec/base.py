"""The executor contract.

An executor schedules the stages of a :class:`~repro.core.stages.StagePipeline`
over a :class:`~repro.core.stages.PipelineContext` and an input payload.
It must be *observationally serial*: whatever parallelism it employs, the
payload it returns is bit-for-bit the one the serial schedule produces.
"""

from __future__ import annotations

import abc

from repro.core.stages import (
    PipelineContext,
    RawInput,
    StagePipeline,
    default_pipeline,
)

__all__ = ["Executor"]


class Executor(abc.ABC):
    """Schedules pipeline stages; see :mod:`repro.exec`."""

    def __init__(self, pipeline: StagePipeline | None = None):
        #: The stage pipeline this executor drives.
        self.pipeline = pipeline if pipeline is not None \
            else default_pipeline()

    @abc.abstractmethod
    def execute(self, ctx: PipelineContext, payload: RawInput, *,
                until: str | None = None):
        """Run the pipeline on ``payload``.

        Parameters
        ----------
        ctx:
            Options, automaton and the timer receiving step durations.
        payload:
            The raw input payload.
        until:
            Stop after the named stage and return its output payload
            (e.g. ``"tag"`` returns the
            :class:`~repro.core.stages.TaggedInput` — used by the
            streaming parser's record-boundary search).  ``None`` runs
            to completion and returns the
            :class:`~repro.core.stages.ConvertedOutput`.
        """

    def close(self) -> None:
        """Release executor resources (worker pools); idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
