"""The executor contract.

An executor schedules the stages of a :class:`~repro.core.stages.StagePipeline`
over a :class:`~repro.core.stages.PipelineContext` and an input payload.
It must be *observationally serial*: whatever parallelism it employs, the
payload it returns is bit-for-bit the one the serial schedule produces.
"""

from __future__ import annotations

import abc

from repro.core.stages import (
    PipelineContext,
    RawInput,
    StagePipeline,
    default_pipeline,
)
from repro.errors import ExecutorError

__all__ = ["Executor"]


class Executor(abc.ABC):
    """Schedules pipeline stages; see :mod:`repro.exec`."""

    def __init__(self, pipeline: StagePipeline | None = None):
        #: The stage pipeline this executor drives.
        self.pipeline = pipeline if pipeline is not None \
            else default_pipeline()
        self._closed = False

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _ensure_open(self) -> None:
        """Raise :class:`~repro.errors.ExecutorError` if closed."""
        if self._closed:
            raise ExecutorError(
                f"{type(self).__name__} has been closed; "
                f"create a new executor to parse again")

    @abc.abstractmethod
    def execute(self, ctx: PipelineContext, payload: RawInput, *,
                until: str | None = None):
        """Run the pipeline on ``payload``.

        Parameters
        ----------
        ctx:
            Options, automaton and the timer receiving step durations.
        payload:
            The raw input payload.
        until:
            Stop after the named stage and return its output payload
            (e.g. ``"tag"`` returns the
            :class:`~repro.core.stages.TaggedInput` — used by the
            streaming parser's record-boundary search).  ``None`` runs
            to completion and returns the
            :class:`~repro.core.stages.ConvertedOutput`.
        """

    def close(self) -> None:
        """Release executor resources (worker pools); idempotent."""
        self._closed = True

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
