"""The serial executor: every stage, in order, in this process."""

from __future__ import annotations

from repro.core.stages import PipelineContext, RawInput
from repro.exec.base import Executor

__all__ = ["SerialExecutor"]


class SerialExecutor(Executor):
    """Run the stage pipeline sequentially (the default backend).

    This is the reference schedule: one stage after another, each timed
    under its paper step name — exactly the behaviour of the historical
    monolithic ``ParPaRawParser.parse()``.
    """

    def execute(self, ctx: PipelineContext, payload: RawInput, *,
                until: str | None = None):
        self._ensure_open()
        if not ctx.tracer.enabled:
            return self.pipeline.run(ctx, payload, until=until)
        with ctx.tracer.span("executor:serial", until=until or ""):
            return self.pipeline.run(ctx, payload, until=until)
