"""Pluggable execution backends for the stage pipeline.

The stage decomposition (:mod:`repro.core.stages`) separates *what* the
pipeline computes from *how* it is scheduled.  This package owns the how:

* :class:`SerialExecutor` — runs every stage in order in the calling
  process.  Bit-for-bit the behaviour of the historical monolithic
  parser, and the default.
* :class:`ShardedExecutor` — splits the input into byte shards, computes
  each shard's state-transition vectors, emissions and local tags in a
  ``concurrent.futures.ProcessPoolExecutor``, and combines shards with
  the *same* operators the paper uses across chunks: the STV composition
  scan (§3.1) resolves each shard's entering DFA state, and the rel/abs
  column-offset scan (§3.2) resolves each shard's entering record/column
  offsets.  Shard boundaries therefore need no record alignment — the
  paper's context-resolution trick, lifted from GPU chunks to CPU
  processes.

Executors are passed to :class:`~repro.core.parser.ParPaRawParser`,
:class:`~repro.streaming.StreamingParser`, or the CLI's ``--workers``
flag.
"""

from repro.core.parser import set_default_executor_factory
from repro.exec.base import Executor
from repro.exec.serial import SerialExecutor
from repro.exec.sharded import ShardedExecutor

__all__ = ["Executor", "SerialExecutor", "ShardedExecutor"]

# Dependency inversion: repro.core never imports this package; instead we
# register the serial backend as the parser's default at import time.
set_default_executor_factory(SerialExecutor)
