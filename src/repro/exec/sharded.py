"""The sharded executor: multiprocess parsing with scan-based combination.

The paper's context-resolution machinery is hierarchical by construction:
a chunk's state-transition vector (STV) summarises the chunk independently
of where the DFA enters it, and STVs combine under composition.  The same
holds one level up — a *shard* (a contiguous run of bytes, independently
chunked) is summarised by the composition of its chunks' STVs, and shards
combine under the very same operator.  Likewise the rel/abs column-offset
operator (§3.2) combines per-shard delimiter summaries into each shard's
entering record/column offsets.

:class:`ShardedExecutor` exploits this to parallelise the byte-bound
phases across a ``ProcessPoolExecutor``:

1. **contexts** (timer step ``parse``) — every worker chunks its shard,
   computes per-chunk STVs, their shard-local exclusive composition scan,
   and the shard's composite vector;
2. **combine** (timer step ``scan``) — the main process scans the shard
   composites (one tiny composition scan over ``num_shards`` vectors),
   yielding every shard's entering DFA state, and resolves each chunk's
   start state from the shard-local scans;
3. **tags** (timer step ``tag``) — every worker re-simulates its shard
   with the now-known start states (emissions + §3.1 bitmaps) and tags
   records/columns *locally*; the main process shifts record ids by the
   scanned record counts, resolves head-of-shard column ids with the
   rel/abs offset scan, and concatenates.

Because a shard entering mid-record or mid-quote is resolved exactly like
a chunk entering mid-record or mid-quote, shard boundaries are arbitrary
byte positions — no record alignment, no sequential pre-pass.  Stages
downstream of tagging (validate/partition/convert) run on the merged
result through the ordinary stage pipeline, so the output is bit-for-bit
the serial executor's.

Two hot-path economies on top of the schedule:

* **strided kernels** — workers run the byte-bound sweeps on the
  precomposed k-gram tables of :mod:`repro.kernels` (same stride the
  serial stages would pick); each worker process builds a dialect's
  tables once, on its first shard, and its process-local cache serves
  every later shard and parse;
* **shared-memory input** — when running on a real process pool the raw
  input is published once via :mod:`multiprocessing.shared_memory` and
  workers slice + chunk their own shard, instead of pickling every
  shard's bytes through the pool pipe twice (once per phase).  The
  ``sharded.input.bytes.shipped`` counter records what still travels by
  pickle, so the saving is visible; platforms without shared memory fall
  back to shipping shard arrays.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from itertools import repeat

import numpy as np

from repro.columnar.guard import protect
from repro.core.options import TaggingImpl
from repro.core.chunking import chunk_groups_canonical
from repro.core.context import compute_transition_vectors
from repro.core.stages import PipelineContext, RawInput, TaggedInput
from repro.core.tagging import build_tag_result, compute_emissions, \
    tag_chunked, tag_global
from repro.dfa.automaton import Dfa
from repro.dfa.minimize import canonicalize
from repro.errors import ParseError
from repro.exec.base import Executor
from repro.kernels import (
    compute_emissions_plan,
    compute_transition_vectors_plan,
    get_plan,
    resolve_stride,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.trace import Tracer, snapshot_spans
from repro.scan.numpy_scan import exclusive_sum, scan_column_offsets, \
    scan_transition_vectors

__all__ = ["ShardedExecutor"]

#: Stages whose intermediates exist only on the global chunk grid; a
#: request to stop inside this prefix falls back to the serial schedule.
_GRID_STAGES = ("prune", "chunk", "stv", "scan")

#: Reusable no-op context for the unobserved worker path.
_NO_SPAN = nullcontext()


def _pool_context():
    """A thread-safe start method for the worker pool.

    The ingest service drives one shared executor from several
    dispatcher threads, so pool workers may be created while other
    threads are mid-parse.  Plain ``fork`` would snapshot whatever locks
    those threads hold (numpy internals, the kernel-table cache,
    logging) into the child, which then deadlocks on first use.
    ``forkserver`` forks from a clean single-threaded server process
    instead; preloading this module there keeps per-worker startup
    cheap (numpy and repro are imported once, in the server).  Platforms
    without ``forkserver`` fall back to the default start method —
    ``spawn`` there, which is equally thread-safe.
    """
    try:
        ctx = multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - platform dependent
        return None
    ctx.set_forkserver_preload(["repro.exec.sharded"])
    return ctx


# -- worker tasks (module-level: picklable under every start method) ---------

# parlint: worker -- runs in pool processes; must stay pure and picklable
def _worker_obs(observe: bool) -> tuple[Tracer | None,
                                        MetricsRegistry | None]:
    """Worker-local observability sinks (``(None, None)`` when disabled)."""
    if not observe:
        return None, None
    return Tracer(), MetricsRegistry()


# parlint: worker -- runs in pool processes; must stay pure and picklable
def _pack_obs(tracer: Tracer | None, metrics: MetricsRegistry | None,
              step: str, start: float, nbytes: int):
    """Finish worker-side accounting and pack it for the trip home."""
    if tracer is None or metrics is None:
        return None
    elapsed = time.perf_counter() - start  # parlint: disable=PPR303 -- obs
    metrics.observe(f"worker.{step}.seconds", elapsed)
    metrics.count("worker.bytes", nbytes)
    return os.getpid(), snapshot_spans(tracer), metrics.to_dict()


# parlint: worker returns-borrowed -- pool-side; raw aliases the shm block
def _open_shard(shard) -> tuple[np.ndarray, object]:
    """Materialise a worker's shard bytes.

    ``shard`` is either the shard's uint8 array (the pickle fallback) or
    a ``(shm_name, total_bytes, lo, hi)`` descriptor pointing into the
    shared-memory block the parent published; in the latter case the
    worker attaches and slices its own range — no input bytes cross the
    pool pipe.  Returns ``(raw, handle)``; pass ``handle`` to
    :func:`_close_shard` once every derived array has been computed
    (nothing returned home may alias the shared buffer).
    """
    if isinstance(shard, np.ndarray):
        return shard, None
    from multiprocessing import shared_memory
    name, total, lo, hi = shard
    handle = shared_memory.SharedMemory(name=name)
    raw = np.ndarray((total,), dtype=np.uint8, buffer=handle.buf)[lo:hi]
    return protect(raw), handle


# parlint: worker -- runs in pool processes; must stay pure and picklable
def _close_shard(handle) -> None:
    """Detach from the parent's shared-memory block (never unlinks)."""
    if handle is not None:
        handle.close()


# parlint: worker -- runs in pool processes; must stay pure and picklable
def _shard_contexts(shard, dfa: Dfa, chunk_size: int, stride: int = 1,
                    minimize: bool = True, shard_index: int = 0,
                    observe: bool = False
                    ) -> tuple[np.ndarray, np.ndarray, tuple | None]:
    """Worker phase 1: shard-local STVs, their scan, and the composite.

    Returns ``(local_scan, composite, obs)`` where ``local_scan`` is the
    exclusive composition scan of the shard's chunk STVs (row ``c`` maps a
    shard-entry state to the state entering chunk ``c``) and ``composite``
    maps a shard-entry state to the state after the shard's last byte
    (tail padding uses the identity group, so it never perturbs the
    composition).  With ``minimize`` the sweeps (and hence the returned
    vectors) live in the *canonical* state space — canonicalisation is a
    pure function of the automaton, so every worker and the combining
    parent agree on it without shipping the canonical form around.
    ``obs`` carries the worker's spans/metrics when observing (``None``
    otherwise).
    """
    raw, handle = _open_shard(shard)
    try:
        tracer, metrics = _worker_obs(observe)
        start = time.perf_counter()  # parlint: disable=PPR303 -- obs timing
        with tracer.span("worker:contexts", shard=shard_index,
                         bytes=int(raw.size)) if tracer else _NO_SPAN:
            groups, _, padded_dfa, _canon = chunk_groups_canonical(
                raw, dfa, chunk_size, minimize)
            if stride > 1:
                plan = get_plan(padded_dfa, stride, chunk_size,
                                metrics or NULL_METRICS)
                vectors = compute_transition_vectors_plan(groups, plan)
            else:
                vectors = compute_transition_vectors(groups, padded_dfa)
            inclusive = scan_transition_vectors(vectors, exclusive=False)
            local_scan = np.empty_like(inclusive)
            local_scan[0] = np.arange(inclusive.shape[1],
                                      dtype=inclusive.dtype)
            local_scan[1:] = inclusive[:-1]
        obs = _pack_obs(tracer, metrics, "contexts", start, int(raw.size))
        return local_scan, inclusive[-1], obs
    finally:
        _close_shard(handle)


# parlint: worker -- runs in pool processes; must stay pure and picklable
def _compact_ids(ids: np.ndarray) -> np.ndarray:
    """Downcast int64 tag ids for the trip home when they fit in int32."""
    if ids.size == 0 or int(ids.max()) < np.iinfo(np.int32).max:
        return ids.astype(np.int32)
    return ids


# parlint: worker -- runs in pool processes; must stay pure and picklable
def _shard_tags(shard, dfa: Dfa, chunk_size: int,
                start_states: np.ndarray, impl_value: str, stride: int = 1,
                minimize: bool = True, shard_index: int = 0,
                observe: bool = False) -> tuple:
    """Worker phase 2: emissions and shard-local record/column tags.

    Returns ``(emissions, record_ids, column_ids, final_state,
    invalid_position, record_delims, offset_kind, offset_value, obs)``
    where the ids are *local* (relative to the shard start), the §3.2
    summary entries are the shard's record-delimiter count and its
    rel/abs column offset (absolute = field delimiters after the last
    record delimiter; relative = all field delimiters), and ``obs``
    carries the worker's spans/metrics when observing.  With
    ``minimize`` the sweep runs in canonical state space (and
    ``start_states`` arrive canonical, from phase 1's canonical
    vectors); the returned ``final_state`` is mapped back to the source
    automaton, which is what validation speaks.
    """
    raw, handle = _open_shard(shard)
    try:
        tracer, metrics = _worker_obs(observe)
        start = time.perf_counter()  # parlint: disable=PPR303 -- obs timing
        with tracer.span("worker:tags", shard=shard_index,
                         bytes=int(raw.size)) if tracer else _NO_SPAN:
            groups, chunking, padded_dfa, canon = chunk_groups_canonical(
                raw, dfa, chunk_size, minimize)
            if stride > 1:
                plan = get_plan(padded_dfa, stride, chunk_size,
                                metrics or NULL_METRICS)
                emissions, final_state, invalid_position = \
                    compute_emissions_plan(groups, start_states,
                                           plan, chunking)
            else:
                emissions, final_state, invalid_position = \
                    compute_emissions(groups, start_states, padded_dfa,
                                      chunking)
            if canon is not None:
                final_state = int(canon.state_rep[final_state])
            if TaggingImpl(impl_value) is TaggingImpl.CHUNKED:
                tags = tag_chunked(emissions, final_state, chunking)
            else:
                tags = tag_global(emissions, final_state)
            delim_positions = np.flatnonzero(tags.record_delim)
            if delim_positions.size:
                offset_kind = True
                offset_value = int(
                    tags.field_delim[delim_positions[-1] + 1:].sum())
            else:
                offset_kind = False
                offset_value = int(tags.field_delim.sum())
        obs = _pack_obs(tracer, metrics, "tags", start, int(raw.size))
        return (emissions, _compact_ids(tags.record_ids),
                _compact_ids(tags.column_ids), final_state,
                invalid_position, int(delim_positions.size), offset_kind,
                offset_value, obs)
    finally:
        _close_shard(handle)


class ShardedExecutor(Executor):
    """Parse with per-shard workers in a process pool.

    Parameters
    ----------
    workers:
        Worker processes (default: ``os.cpu_count()``).  ``workers=1``
        runs the sharded schedule without spawning a pool.
    shard_bytes:
        Force a shard size in bytes (default: the input is split evenly
        across ``workers``).  Any positive value is legal — shards
        smaller than a chunk, shards that split records, quotes or UTF-8
        sequences are all resolved by the combination scans.
    use_processes:
        ``False`` executes the worker tasks inline in the calling
        process (the full sharded data path, minus the pool) — useful
        for tests and debugging.
    shared_input:
        Publish the raw input to pool workers through
        :mod:`multiprocessing.shared_memory` (the default) instead of
        pickling every shard's bytes; ``False`` forces the pickle path
        (the automatic fallback when shared memory is unavailable).
    pipeline:
        Stage pipeline override (defaults to the canonical one).

    The worker pool is created lazily on first use and reused across
    parses; call :meth:`close` (or use the executor as a context
    manager) to release it.
    """

    def __init__(self, workers: int | None = None,
                 shard_bytes: int | None = None,
                 use_processes: bool = True,
                 shared_input: bool = True,
                 pipeline=None):
        super().__init__(pipeline)
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ParseError("workers must be >= 1")
        if shard_bytes is not None and shard_bytes <= 0:
            raise ParseError("shard_bytes must be positive")
        self.workers = int(workers)
        self.shard_bytes = shard_bytes
        self.use_processes = bool(use_processes)
        self.shared_input = bool(shared_input)
        self._pool: ProcessPoolExecutor | None = None
        # Guards lazy pool creation/teardown: the ingest service drives
        # one shared executor from several dispatcher threads, and an
        # unlocked check-then-create would build (and leak) a second
        # pool under that race.
        self._pool_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        super().close()
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- execution ---------------------------------------------------------

    def execute(self, ctx: PipelineContext, payload: RawInput, *,
                until: str | None = None):
        self._ensure_open()
        if until in _GRID_STAGES:
            # Chunk-grid intermediates requested: they only exist on the
            # serial schedule's global grid.
            return self.pipeline.run(ctx, payload, until=until)

        payload = self.pipeline.run_stage(self.pipeline.stage("prune"),
                                          ctx, payload)
        tagged = self._tag_sharded(ctx, payload)
        if until == "tag":
            return tagged
        return self.pipeline.run(ctx, tagged, start="validate", until=until)

    # -- sharded phases 1+2 ------------------------------------------------

    def _tag_sharded(self, ctx: PipelineContext,
                     payload: RawInput) -> TaggedInput:
        options = ctx.options
        raw = payload.raw
        tracer, metrics = ctx.tracer, ctx.metrics
        observe = tracer.enabled or metrics.enabled
        minimize = options.minimize_dfa
        # The automaton the workers will actually sweep with: stride
        # selection must see the same (canonical) state/group counts the
        # workers' tables will have.
        run_dfa = canonicalize(ctx.dfa).dfa if minimize else ctx.dfa
        stride = resolve_stride(options.kernel_stride,
                                run_dfa.with_padding_group(),
                                options.kernel_table_budget)
        bounds = self._shard_bounds(int(raw.size), options.chunk_size)
        mapper = self._mapper(len(bounds))
        pooled = self.use_processes and self.workers > 1 and len(bounds) > 1
        shm, shards = self._ship_input(raw, bounds, pooled)
        # Bytes each phase pickles through the pool pipe: the whole
        # shard under the fallback, a ~100 B descriptor under shm, and
        # nothing at all when shards stay in-process.
        shipped_per_phase = sum(hi - lo for lo, hi in bounds) \
            if pooled and shm is None else 0
        if metrics.enabled:
            metrics.gauge("shards", len(bounds))
            metrics.gauge("workers", self.workers)
            # Workers run the sweeps in their own processes, so record the
            # stride they were handed here, where it is resolved.
            metrics.gauge("stage.stv.stride", stride)
            metrics.gauge("stage.tag.stride", stride)
            metrics.gauge("kernels.table_budget",
                          options.kernel_table_budget)
            metrics.gauge("sharded.input.shared_memory",
                          1.0 if shm is not None else 0.0)

        try:
            phase_start = time.perf_counter()
            with tracer.span("sharded:contexts", shards=len(bounds)):
                with ctx.timer.step("parse"):
                    contexts = list(mapper(_shard_contexts, shards,
                                           repeat(ctx.dfa),
                                           repeat(options.chunk_size),
                                           repeat(stride),
                                           repeat(minimize),
                                           range(len(bounds)),
                                           repeat(observe)))
            if metrics.enabled:
                # Mirror the serial pipeline's stage.*.seconds histograms
                # so dashboards and the planner's calibration see the
                # same names regardless of executor.
                metrics.observe("stage.stv.seconds",
                                time.perf_counter() - phase_start)
            for _, _, obs in contexts:
                self._ingest_obs(tracer, metrics, obs)
            if metrics.enabled:
                metrics.count("sharded.input.bytes.shipped",
                              shipped_per_phase)

            phase_start = time.perf_counter()
            with tracer.span("sharded:combine", shards=len(bounds)):
                with ctx.timer.step("scan"):
                    # One composition scan over the shard composites gives
                    # every shard its entering state; indexing each shard's
                    # local scan with it gives every chunk its start state
                    # (§3.1, twice).
                    composites = np.stack([composite
                                           for _, composite, _ in contexts])
                    entering = scan_transition_vectors(composites,
                                                       exclusive=True)
                    # Composites live in the workers' (canonical when
                    # minimising) state space; index with that space's
                    # start state.
                    entering_states = entering[:, run_dfa.start_state]
                    start_states = [
                        local_scan[:, int(state)].astype(np.uint8)
                        for (local_scan, _, _), state
                        in zip(contexts, entering_states)
                    ]

            if metrics.enabled:
                metrics.observe("stage.scan.seconds",
                                time.perf_counter() - phase_start)
            phase_start = time.perf_counter()
            with tracer.span("sharded:tags", shards=len(bounds)):
                with ctx.timer.step("tag"):
                    shard_tags = list(mapper(
                        _shard_tags, shards,
                        repeat(ctx.dfa),
                        repeat(options.chunk_size),
                        start_states,
                        repeat(options.tagging_impl.value),
                        repeat(stride),
                        repeat(minimize),
                        range(len(bounds)),
                        repeat(observe)))
                    tags, invalid_position = self._merge_tags(
                        bounds, shard_tags,
                        run_structured=options.tagging_impl
                        is TaggingImpl.GLOBAL)
            if metrics.enabled:
                metrics.observe("stage.tag.seconds",
                                time.perf_counter() - phase_start)
            for entry in shard_tags:
                self._ingest_obs(tracer, metrics, entry[8])
            if metrics.enabled:
                metrics.count("sharded.input.bytes.shipped",
                              shipped_per_phase)
        finally:
            if shm is not None:
                shm.close()
                shm.unlink()

        return TaggedInput(raw=raw, input_bytes=payload.input_bytes,
                           tags=tags, invalid_position=invalid_position)

    def _ship_input(self, raw: np.ndarray, bounds, pooled: bool):
        """How shard bytes reach the workers: ``(shm, shard payloads)``.

        On a real pool (and unless ``shared_input=False``) the input is
        copied once into a POSIX shared-memory block and workers get
        ``(name, total, lo, hi)`` descriptors; they attach and slice
        their own shard, so no input bytes are pickled.  Inline
        execution, single-shard runs and platforms without
        ``multiprocessing.shared_memory`` fall back to shipping the
        shard arrays themselves.
        """
        if pooled and self.shared_input and raw.size:
            try:
                from multiprocessing import shared_memory
                shm = shared_memory.SharedMemory(create=True,
                                                 size=int(raw.size))
                np.ndarray(raw.shape, dtype=np.uint8, buffer=shm.buf)[:] \
                    = raw  # parlint: disable=PPR601 -- filling a segment this frame just created and owns
                descriptors = [(shm.name, int(raw.size), lo, hi)
                               for lo, hi in bounds]
                return shm, descriptors
            except (ImportError, OSError):
                pass
        return None, [raw[lo:hi] for lo, hi in bounds]

    @staticmethod
    def _ingest_obs(tracer, metrics, obs) -> None:
        """Fold one worker's packed spans/metrics into the parent sinks."""
        if obs is None:
            return
        pid, spans, metric_snapshot = obs
        tracer.ingest(spans, pid)
        metrics.merge_dict(metric_snapshot)

    @staticmethod
    def _merge_tags(bounds, shard_tags, run_structured: bool = True):
        """Stitch per-shard tag results into one global TagResult.

        Record ids shift by the exclusive sum of per-shard record counts;
        column ids of each shard's *head* segment (positions before its
        first record delimiter, whose record started in an earlier shard)
        gain the shard's entering column offset from the rel/abs scan.
        Everything after a shard's first record delimiter is already
        globally correct — the §3.2 argument, verbatim.

        ``run_structured`` mirrors the serial schedule's tagging
        implementation: when the workers ran :func:`tag_global` the
        merged result carries the per-delimiter position array, so the
        parent's partition stage resolves the auto strategy exactly as a
        serial parse would (field-run); the paper-faithful chunked
        implementation leaves it out (radix fallback).
        """
        record_counts = np.array([t[5] for t in shard_tags],
                                 dtype=np.int64)
        record_offsets = exclusive_sum(record_counts)
        kinds = np.array([t[6] for t in shard_tags], dtype=bool)
        values = np.array([t[7] for t in shard_tags], dtype=np.int64)
        _, entering_columns = scan_column_offsets(kinds, values,
                                                  exclusive=True)

        emission_parts = []
        record_parts = []
        column_parts = []
        invalid_position = None
        for i, (lo, _hi) in enumerate(bounds):
            (emissions, local_rec, local_col, _final, invalid,
             _count, _kind, _value) = shard_tags[i][:8]
            emission_parts.append(emissions)
            rec = local_rec.astype(np.int64)
            rec += record_offsets[i]
            col = local_col.astype(np.int64)
            if entering_columns[i]:
                col[local_rec == 0] += entering_columns[i]
            record_parts.append(rec)
            column_parts.append(col)
            if invalid_position is None and invalid is not None:
                invalid_position = lo + invalid

        emissions = np.concatenate(emission_parts) if emission_parts \
            else np.empty(0, dtype=np.uint8)
        record_ids = np.concatenate(record_parts) if record_parts \
            else np.empty(0, dtype=np.int64)
        column_ids = np.concatenate(column_parts) if column_parts \
            else np.empty(0, dtype=np.int64)
        final_state = int(shard_tags[-1][3])
        tags = build_tag_result(emissions, record_ids, column_ids,
                                final_state,
                                run_structured=run_structured)
        return tags, invalid_position

    # -- scheduling --------------------------------------------------------

    def _shard_bounds(self, n: int,
                      chunk_size: int) -> list[tuple[int, int]]:
        """Contiguous byte ranges covering the input (≥ 1, even when empty)."""
        if n == 0:
            return [(0, 0)]
        if self.shard_bytes is not None:
            size = self.shard_bytes
        else:
            # Even split across workers, but never shards smaller than a
            # chunk — sub-chunk shards only make sense when forced.
            size = max(chunk_size, -(-n // self.workers))
        num_shards = -(-n // size)
        return [(i * size, min(n, (i + 1) * size))
                for i in range(num_shards)]

    def _mapper(self, num_shards: int):
        """An ordered ``map`` over shards: the pool's, or the builtin."""
        if not self.use_processes or self.workers == 1 or num_shards <= 1:
            return lambda fn, *iters: list(map(fn, *iters))
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=_pool_context())
            return self._pool.map
