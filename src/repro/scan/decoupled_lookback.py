"""Single-pass prefix scan with decoupled look-back (Merrill & Garland 2016).

ParPaRaw's scans build on the single-pass scan (paper §2): the input is
split into *tiles*, each processed by one thread block.  A tile first
publishes its local **aggregate**; a designated thread then *looks back* over
predecessor tiles' descriptors, accumulating predecessor aggregates until it
finds one that already published an **inclusive prefix**, at which point the
tile can compute and publish its own inclusive prefix.  This needs only a
single pass over the data (versus the classic three-kernel scan-then-add),
and the look-back chains are short in practice.

This implementation simulates the tile machinery faithfully — per-tile
descriptors with the ``INVALID → AGGREGATE_AVAILABLE → PREFIX_AVAILABLE``
status protocol — while executing tiles in an arbitrary (caller-controllable)
order to model concurrent scheduling.  A tile whose look-back cannot complete
yet (a predecessor still INVALID) blocks until that predecessor has run,
mirroring the GPU's spin-wait; the simulation detects scheduling orders that
would deadlock on a real device (they cannot, since GPUs schedule tile 0
eventually — here we simply defer blocked tiles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Generic, Sequence, TypeVar

from repro.scan.operators import Monoid
from repro.scan.sequential import exclusive_scan as _seq_exclusive

T = TypeVar("T")

__all__ = ["single_pass_scan", "TileStatus", "TileDescriptor", "ScanStatistics"]


class TileStatus(Enum):
    """Publication state of a tile's descriptor."""

    INVALID = 0
    AGGREGATE_AVAILABLE = 1
    PREFIX_AVAILABLE = 2


@dataclass
class TileDescriptor(Generic[T]):
    """The per-tile state shared through global memory on a GPU."""

    status: TileStatus = TileStatus.INVALID
    aggregate: T | None = None
    inclusive_prefix: T | None = None


@dataclass
class ScanStatistics:
    """Bookkeeping for analysis: how far did tiles have to look back?"""

    tiles: int = 0
    lookback_steps: int = 0
    deferred_tiles: int = 0
    max_lookback: int = 0
    per_tile_lookback: list[int] = field(default_factory=list)


def single_pass_scan(items: Sequence[T], monoid: Monoid[T],
                     tile_size: int = 4,
                     schedule: Sequence[int] | None = None,
                     exclusive: bool = True,
                     statistics: ScanStatistics | None = None) -> list[T]:
    """Scan ``items`` using the decoupled look-back algorithm.

    Parameters
    ----------
    items:
        Input sequence.
    monoid:
        Associative operator with identity (need not be commutative).
    tile_size:
        Elements per tile (per simulated thread block).
    schedule:
        Optional permutation of tile indexes giving the order tiles are
        *attempted* in, to model out-of-order block scheduling.  Tiles that
        cannot finish their look-back yet are deferred and retried, exactly
        like a spinning GPU block.  Defaults to in-order.
    exclusive:
        Return the exclusive scan (default) or the inclusive scan.
    statistics:
        Optional :class:`ScanStatistics` to fill with look-back telemetry.

    Returns
    -------
    list
        Scanned values, same length as input.
    """
    n = len(items)
    if n == 0:
        return []
    if tile_size <= 0:
        raise ValueError("tile_size must be positive")
    num_tiles = (n + tile_size - 1) // tile_size
    if schedule is None:
        order = list(range(num_tiles))
    else:
        order = list(schedule)
        if sorted(order) != list(range(num_tiles)):
            raise ValueError(
                f"schedule must be a permutation of range({num_tiles})")

    descriptors: list[TileDescriptor[T]] = [TileDescriptor()
                                            for _ in range(num_tiles)]
    output: list[T | None] = [None] * n
    if statistics is not None:
        statistics.tiles = num_tiles
        statistics.per_tile_lookback = [0] * num_tiles

    def run_tile(tile: int) -> bool:
        """Attempt to run one tile; return False if it must be deferred."""
        lo = tile * tile_size
        hi = min(lo + tile_size, n)
        tile_items = items[lo:hi]

        # Local (intra-tile) exclusive scan + aggregate, as a block-wide
        # scan in shared memory would produce.
        local_excl = _seq_exclusive(tile_items, monoid)
        aggregate = monoid.combine(local_excl[-1], tile_items[-1])

        desc = descriptors[tile]
        if tile == 0:
            desc.aggregate = aggregate
            desc.inclusive_prefix = aggregate
            desc.status = TileStatus.PREFIX_AVAILABLE
            tile_prefix = monoid.identity()
        else:
            if desc.status is TileStatus.INVALID:
                desc.aggregate = aggregate
                desc.status = TileStatus.AGGREGATE_AVAILABLE
            # Decoupled look-back: accumulate predecessor aggregates from
            # nearest to farthest until a published inclusive prefix stops
            # the walk.  (Right-to-left accumulation must respect
            # non-commutativity: we prepend.)
            exclusive_prefix = monoid.identity()
            steps = 0
            pred = tile - 1
            while True:
                pdesc = descriptors[pred]
                steps += 1
                if pdesc.status is TileStatus.INVALID:
                    # Predecessor hasn't even published an aggregate; on the
                    # GPU we would spin — in the simulation, defer the tile.
                    if statistics is not None:
                        statistics.deferred_tiles += 1
                    return False
                if pdesc.status is TileStatus.PREFIX_AVAILABLE:
                    assert pdesc.inclusive_prefix is not None
                    exclusive_prefix = monoid.combine(pdesc.inclusive_prefix,
                                                      exclusive_prefix)
                    break
                assert pdesc.aggregate is not None
                exclusive_prefix = monoid.combine(pdesc.aggregate,
                                                  exclusive_prefix)
                pred -= 1
            if statistics is not None:
                statistics.lookback_steps += steps
                statistics.max_lookback = max(statistics.max_lookback, steps)
                statistics.per_tile_lookback[tile] = steps
            desc.inclusive_prefix = monoid.combine(exclusive_prefix, aggregate)
            desc.status = TileStatus.PREFIX_AVAILABLE
            tile_prefix = exclusive_prefix

        # local_excl is the tile-local *exclusive* scan, so combining with
        # the tile prefix directly yields the global exclusive scan.
        for i, local in enumerate(local_excl):
            output[lo + i] = monoid.combine(tile_prefix, local)
        return True

    pending = list(order)
    while pending:
        still_pending = []
        progressed = False
        for tile in pending:
            if run_tile(tile):
                progressed = True
            else:
                still_pending.append(tile)
        if not progressed:
            # Cannot happen with a valid permutation: tile 0 always runs and
            # unblocks the chain; guard against a logic error regardless.
            raise RuntimeError("decoupled look-back made no progress")
        pending = still_pending

    scanned = [v for v in output]
    assert all(v is not None for v in scanned)
    if exclusive:
        return scanned  # type: ignore[return-value]
    return [monoid.combine(scanned[i], items[i])  # type: ignore[arg-type]
            for i in range(n)]
