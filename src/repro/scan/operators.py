"""Monoids (associative operators with identity) for prefix scans.

All efficient parallel prefix-scan algorithms require the binary operator to
be associative (paper §2).  ParPaRaw uses three such operators:

* **addition** over record counts and symbol counts;
* **state-transition-vector composition** ``(a ∘ b)[i] = b[a[i]]`` over the
  per-chunk DFA simulation results (paper §3.1) — associative but *not*
  commutative;
* the **rel/abs column-offset operator** (paper §3.2) — also associative and
  non-commutative: an absolute right operand overrides, a relative right
  operand accumulates.

The scan algorithm implementations in this subpackage are written against
the small :class:`Monoid` protocol so that every algorithm works with every
operator, and so the associativity-dependent invariants can be property
tested uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Generic, Protocol, Sequence, TypeVar

T = TypeVar("T")

__all__ = [
    "ColumnOffset",
    "ColumnOffsetMonoid",
    "MaxMonoid",
    "MinMonoid",
    "Monoid",
    "OffsetKind",
    "SumMonoid",
    "TransitionComposeMonoid",
]


class Monoid(Protocol, Generic[T]):
    """An associative binary operator with an identity element."""

    def combine(self, left: T, right: T) -> T:
        """Apply the operator: ``left ⊕ right`` (order matters)."""
        ...

    def identity(self) -> T:
        """The identity element ``e`` with ``e ⊕ x == x ⊕ e == x``."""
        ...


class SumMonoid:
    """Integer addition; identity 0.  The paper's prefix *sum*."""

    def combine(self, left: int, right: int) -> int:
        return left + right

    def identity(self) -> int:
        return 0


class MaxMonoid:
    """Maximum; identity is -infinity (here: a very small sentinel).

    Used by the column-count inference capability (paper §4.3), which
    reduces per-chunk maximum column counts.
    """

    _IDENTITY = -(1 << 62)

    def combine(self, left: int, right: int) -> int:
        return left if left >= right else right

    def identity(self) -> int:
        return self._IDENTITY


class MinMonoid:
    """Minimum; identity is +infinity (here: a very large sentinel).

    Used by numeric type inference (paper §4.3), which reduces the minimum
    numeric type able to back each field.
    """

    _IDENTITY = 1 << 62

    def combine(self, left: int, right: int) -> int:
        return left if left <= right else right

    def identity(self) -> int:
        return self._IDENTITY


class TransitionComposeMonoid:
    """Composition of state-transition vectors (paper §3.1).

    A state-transition vector ``v`` of length ``|S|`` maps a hypothetical
    start state ``i`` to the end state ``v[i]`` after reading a chunk.  The
    composite of two vectors chains the two chunks:

    ``(a ∘ b)[i] = b[a[i]]``

    i.e. start in ``i``, run chunk A (ending in ``a[i]``), then run chunk B
    from there.  The identity is the vector mapping each state to itself.

    Vectors are represented as tuples so they are hashable and immutable,
    which keeps the scalar scan algorithms honest (no in-place aliasing).
    """

    def __init__(self, num_states: int):
        if num_states <= 0:
            raise ValueError("a DFA needs at least one state")
        self.num_states = num_states
        self._identity = tuple(range(num_states))

    def combine(self, left: Sequence[int], right: Sequence[int]) -> tuple[int, ...]:
        if len(left) != self.num_states or len(right) != self.num_states:
            raise ValueError("state-transition vector has wrong length")
        return tuple(right[left[i]] for i in range(self.num_states))

    def identity(self) -> tuple[int, ...]:
        return self._identity


class OffsetKind(Enum):
    """Whether a column offset is relative or absolute (paper §3.2)."""

    RELATIVE = 0
    ABSOLUTE = 1


@dataclass(frozen=True)
class ColumnOffset:
    """A chunk's column offset: relative increment or absolute position.

    A chunk that contains at least one record delimiter knows the *absolute*
    column offset for the following chunk (counted from the last record
    delimiter); a chunk without a record delimiter only knows it adds ``k``
    field delimiters *relative* to whatever offset preceded it.
    """

    kind: OffsetKind
    value: int

    @staticmethod
    def relative(value: int) -> "ColumnOffset":
        return ColumnOffset(OffsetKind.RELATIVE, value)

    @staticmethod
    def absolute(value: int) -> "ColumnOffset":
        return ColumnOffset(OffsetKind.ABSOLUTE, value)

    @property
    def is_absolute(self) -> bool:
        return self.kind is OffsetKind.ABSOLUTE


class ColumnOffsetMonoid:
    """The rel/abs column-offset operator of paper §3.2.

    ``a ⊕ b = b`` if ``b`` is absolute (a record delimiter occurred in the
    right-hand chunk, resetting the column position), otherwise
    ``a ⊕ b = (a.kind, a.value + b.value)`` — a relative right operand just
    adds its field-delimiter count.

    The identity is ``relative(0)``.
    """

    def combine(self, left: ColumnOffset, right: ColumnOffset) -> ColumnOffset:
        if right.is_absolute:
            return right
        return ColumnOffset(left.kind, left.value + right.value)

    def identity(self) -> ColumnOffset:
        return ColumnOffset.relative(0)
