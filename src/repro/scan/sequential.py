"""Reference sequential prefix scans.

These are the ground-truth implementations the parallel scan algorithms are
tested against.  They make the scan semantics explicit: for an input
``x_0 … x_{n-1}`` and operator ``⊕``, the inclusive scan output is
``y_i = x_0 ⊕ x_1 ⊕ … ⊕ x_i`` and the exclusive scan output is
``y_i = e ⊕ x_0 ⊕ … ⊕ x_{i-1}`` (seeded with the identity ``e``), matching
the definition in paper §2.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.scan.operators import Monoid

T = TypeVar("T")

__all__ = ["inclusive_scan", "exclusive_scan", "reduce"]


def inclusive_scan(items: Sequence[T], monoid: Monoid[T]) -> list[T]:
    """Inclusive left-to-right scan of ``items`` under ``monoid``.

    >>> from repro.scan.operators import SumMonoid
    >>> inclusive_scan([3, 5, 1, 2], SumMonoid())
    [3, 8, 9, 11]
    """
    out: list[T] = []
    acc = monoid.identity()
    for item in items:
        acc = monoid.combine(acc, item)
        out.append(acc)
    return out


def exclusive_scan(items: Sequence[T], monoid: Monoid[T]) -> list[T]:
    """Exclusive left-to-right scan: output ``i`` excludes input ``i``.

    >>> from repro.scan.operators import SumMonoid
    >>> exclusive_scan([3, 5, 1, 2], SumMonoid())
    [0, 3, 8, 9]
    """
    out: list[T] = []
    acc = monoid.identity()
    for item in items:
        out.append(acc)
        acc = monoid.combine(acc, item)
    return out


def reduce(items: Sequence[T], monoid: Monoid[T]) -> T:
    """Fold ``items`` into a single value under ``monoid``.

    Returns the identity for an empty sequence.
    """
    acc = monoid.identity()
    for item in items:
        acc = monoid.combine(acc, item)
    return acc
