"""Hillis–Steele step-efficient parallel scan.

The classic data-parallel scan of Hillis & Steele (1986), cited in paper §2.
It performs ``ceil(log2 n)`` sweeps; in sweep ``d`` every element ``i >= 2^d``
combines the value at distance ``2^d`` to its left into itself.  The
algorithm is *step*-efficient (log n steps) but not *work*-efficient
(O(n log n) operations) — the trade-off the Blelloch scan addresses.

This implementation models the parallel sweeps explicitly (reading from the
previous generation, writing a new one) so tests can assert the exact
parallel semantics rather than accidentally relying on left-to-right
execution order.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.scan.operators import Monoid

T = TypeVar("T")

__all__ = ["hillis_steele_scan"]


def hillis_steele_scan(items: Sequence[T], monoid: Monoid[T],
                       exclusive: bool = False) -> list[T]:
    """Scan ``items`` with log-step parallel sweeps.

    Parameters
    ----------
    items:
        Input sequence.
    monoid:
        Associative operator with identity.
    exclusive:
        If true, return the exclusive scan (shift right, seed identity).

    Returns
    -------
    list
        The scanned values, same length as the input.
    """
    n = len(items)
    if n == 0:
        return []
    current = list(items)
    offset = 1
    while offset < n:
        # One parallel sweep: all combines in this generation read `current`
        # (the previous generation) and write `nxt`, mirroring the
        # double-buffered GPU formulation.
        nxt = list(current)
        for i in range(offset, n):
            nxt[i] = monoid.combine(current[i - offset], current[i])
        current = nxt
        offset *= 2
    if exclusive:
        return [monoid.identity()] + current[:-1]
    return current
