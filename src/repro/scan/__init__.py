"""Parallel prefix-scan substrate.

The prefix scan is the fundamental building block of ParPaRaw (paper §2): the
parsing-context step scans state-transition vectors under *composition*, the
record/column identification step scans counts and rel/abs offsets, and the
radix-sort partition scans histograms.

This subpackage provides:

* a small monoid protocol (:mod:`repro.scan.operators`) with the three
  operators the paper needs — addition, state-transition-vector composition,
  and the rel/abs column-offset operator — plus min/max for type inference;
* reference sequential scans (:mod:`repro.scan.sequential`);
* the classic data-parallel scan algorithms the paper's related work cites:
  Hillis–Steele (:mod:`repro.scan.hillis_steele`), Blelloch work-efficient
  (:mod:`repro.scan.blelloch`), and the Merrill–Garland single-pass scan with
  decoupled look-back (:mod:`repro.scan.decoupled_lookback`) that ParPaRaw
  builds on;
* a segmented scan (:mod:`repro.scan.segmented`);
* vectorised NumPy scans over arrays of state-transition vectors and offset
  pairs (:mod:`repro.scan.numpy_scan`) used by the production pipeline.
"""

from repro.scan.operators import (
    Monoid,
    SumMonoid,
    MaxMonoid,
    MinMonoid,
    TransitionComposeMonoid,
    ColumnOffsetMonoid,
    OffsetKind,
    ColumnOffset,
)
from repro.scan.sequential import (
    inclusive_scan,
    exclusive_scan,
    reduce as scan_reduce,
)
from repro.scan.hillis_steele import hillis_steele_scan
from repro.scan.blelloch import blelloch_scan
from repro.scan.decoupled_lookback import single_pass_scan
from repro.scan.segmented import segmented_inclusive_scan
from repro.scan.hierarchical import (
    warp_scan,
    block_scan,
    hierarchical_device_scan,
)
from repro.scan.numpy_scan import (
    exclusive_sum,
    inclusive_sum,
    compose_vectors,
    scan_transition_vectors,
    scan_column_offsets,
)

__all__ = [
    "Monoid",
    "SumMonoid",
    "MaxMonoid",
    "MinMonoid",
    "TransitionComposeMonoid",
    "ColumnOffsetMonoid",
    "OffsetKind",
    "ColumnOffset",
    "inclusive_scan",
    "exclusive_scan",
    "scan_reduce",
    "hillis_steele_scan",
    "blelloch_scan",
    "single_pass_scan",
    "segmented_inclusive_scan",
    "warp_scan",
    "block_scan",
    "hierarchical_device_scan",
    "exclusive_sum",
    "inclusive_sum",
    "compose_vectors",
    "scan_transition_vectors",
    "scan_column_offsets",
]
