"""Blelloch work-efficient parallel scan (up-sweep / down-sweep).

Blelloch (1989), cited in paper §2, reduced the scan to O(n) work using two
tree traversals over a conceptually padded power-of-two array:

* **up-sweep (reduce)** — build partial sums up the tree;
* **down-sweep** — seed the root with the identity and push prefixes down,
  at each node handing its left child's partial sum combined with the
  incoming prefix to its right child.

The natural output is the *exclusive* scan; the inclusive scan is recovered
by combining each input into its exclusive prefix.

Correct operation with *non-commutative* operators (state-transition vector
composition!) requires the combine order to be exactly
``left-subtree ⊕ right-subtree`` throughout — this implementation preserves
that order and the tests verify it against the sequential reference with the
composition monoid.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.scan.operators import Monoid
from repro.utils.bits import next_power_of_two

T = TypeVar("T")

__all__ = ["blelloch_scan"]


def blelloch_scan(items: Sequence[T], monoid: Monoid[T],
                  exclusive: bool = True) -> list[T]:
    """Work-efficient scan of ``items`` under ``monoid``.

    Parameters
    ----------
    items:
        Input sequence.
    monoid:
        Associative operator with identity; need not be commutative.
    exclusive:
        If true (default — the algorithm's natural form) return the
        exclusive scan, else the inclusive scan.

    Returns
    -------
    list
        Scanned values, same length as input.
    """
    n = len(items)
    if n == 0:
        return []
    size = next_power_of_two(n)
    tree = list(items) + [monoid.identity()] * (size - n)

    # Up-sweep: after the pass with stride `d`, tree[k] for k ≡ d-1 (mod d)
    # holds the reduction of the d-wide block ending at k.
    stride = 1
    while stride < size:
        for right in range(2 * stride - 1, size, 2 * stride):
            left = right - stride
            tree[right] = monoid.combine(tree[left], tree[right])
        stride *= 2

    # Down-sweep: the root becomes the identity; walking down, each node
    # passes its incoming prefix to the left child and (prefix ⊕ left-sum)
    # to the right child.
    tree[size - 1] = monoid.identity()
    stride = size // 2
    while stride >= 1:
        for right in range(2 * stride - 1, size, 2 * stride):
            left = right - stride
            left_sum = tree[left]
            tree[left] = tree[right]
            tree[right] = monoid.combine(tree[right], left_sum)
        stride //= 2

    result = tree[:n]
    if exclusive:
        return result
    return [monoid.combine(result[i], items[i]) for i in range(n)]
