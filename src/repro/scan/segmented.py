"""Segmented prefix scan.

A segmented scan restarts the accumulation at segment boundaries, given a
head-flag array.  ParPaRaw uses the segmented formulation implicitly when
assigning column indexes within each record (the column counter resets at
every record delimiter) and when run-length encoding record-tags for CSS
index generation.  The segmented scan is also the textbook reduction of both
problems to the ordinary scan: pair each value with its head flag and scan
under the *segmented* operator, which is associative whenever the underlying
operator is.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.scan.operators import Monoid

T = TypeVar("T")

__all__ = ["segmented_inclusive_scan", "SegmentedMonoid"]


class SegmentedMonoid:
    """Lift a monoid to (flag, value) pairs with segment-reset semantics.

    ``(fa, a) ⊕ (fb, b) = (fa | fb, b)`` if ``fb`` (right operand starts a
    new segment, discarding the left prefix), else ``(fa, a ⊕ b)``.

    This is the standard construction showing segmented scans are ordinary
    scans over a derived monoid; its associativity is property tested.
    """

    def __init__(self, inner: Monoid[T]):
        self.inner = inner

    def combine(self, left: tuple[bool, T],
                right: tuple[bool, T]) -> tuple[bool, T]:
        flag_l, value_l = left
        flag_r, value_r = right
        if flag_r:
            return (True, value_r)
        return (flag_l or flag_r, self.inner.combine(value_l, value_r))

    def identity(self) -> tuple[bool, T]:
        return (False, self.inner.identity())


def segmented_inclusive_scan(items: Sequence[T], head_flags: Sequence[bool],
                             monoid: Monoid[T]) -> list[T]:
    """Inclusive scan restarting at positions whose head flag is set.

    >>> from repro.scan.operators import SumMonoid
    >>> segmented_inclusive_scan([1, 1, 1, 1, 1],
    ...                          [True, False, True, False, False],
    ...                          SumMonoid())
    [1, 2, 1, 2, 3]
    """
    if len(items) != len(head_flags):
        raise ValueError("items and head_flags must have equal length")
    lifted = SegmentedMonoid(monoid)
    acc = lifted.identity()
    out: list[T] = []
    for flag, value in zip(head_flags, items):
        acc = lifted.combine(acc, (bool(flag), value))
        out.append(acc[1])
    return out
