"""Hierarchical GPU-style scan: warp -> block -> device.

The single-pass scan the paper builds on (Merrill & Garland 2016) is the
*device-level* tier of a three-level hierarchy; inside each thread block
the tile-local scan is itself composed:

1. **warp scan** — each warp of 32 lanes scans its values with the
   shuffle-based Hillis-Steele doubling (``log2 32 = 5`` steps);
2. **block scan** — warp aggregates are scanned (by one warp) and added
   back as per-warp prefixes;
3. **device scan** — block aggregates flow through the decoupled
   look-back protocol (:mod:`repro.scan.decoupled_lookback`).

This module implements tiers 1 and 2 faithfully (explicit lane/warp
structure, double-buffered sweeps) and composes tier 3 from the existing
single-pass scan, giving the full GPU scan architecture in executable
form.  Every tier works with any associative operator — including the
paper's non-commutative STV composition — and equals the sequential scan
(property tested).
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.scan.decoupled_lookback import single_pass_scan
from repro.scan.operators import Monoid
from repro.scan.sequential import exclusive_scan as _seq_exclusive

T = TypeVar("T")

__all__ = ["warp_scan", "block_scan", "hierarchical_device_scan"]

WARP_SIZE = 32


def warp_scan(lane_values: Sequence[T], monoid: Monoid[T],
              warp_size: int = WARP_SIZE) -> list[T]:
    """Inclusive intra-warp scan via shuffle-up doubling.

    Models ``__shfl_up_sync``: at step ``d`` every lane ``l >= 2^d``
    combines the value from lane ``l - 2^d`` (read from the *previous*
    step's registers — double buffered) before its own.
    """
    n = len(lane_values)
    if n > warp_size:
        raise ValueError(f"a warp holds at most {warp_size} lanes")
    registers = list(lane_values)
    offset = 1
    while offset < n:
        previous = list(registers)  # all lanes shuffle simultaneously
        for lane in range(offset, n):
            registers[lane] = monoid.combine(previous[lane - offset],
                                             previous[lane])
        offset *= 2
    return registers


def block_scan(thread_values: Sequence[T], monoid: Monoid[T],
               warp_size: int = WARP_SIZE,
               exclusive: bool = False) -> list[T]:
    """Block-wide scan composed from warp scans.

    1. every warp scans its lanes;
    2. the last lane of each warp (the warp aggregate) is scanned across
       warps (on a GPU: by warp 0, after a shared-memory round trip);
    3. each warp's lanes fold their preceding warps' aggregate in.
    """
    n = len(thread_values)
    if n == 0:
        return []
    # Tier 1: per-warp inclusive scans.
    warps = [list(thread_values[start:start + warp_size])
             for start in range(0, n, warp_size)]
    scanned = [warp_scan(w, monoid, warp_size) for w in warps]

    # Tier 2: scan of warp aggregates (exclusive -> per-warp prefix).
    aggregates = [w[-1] for w in scanned]
    prefixes = _seq_exclusive(aggregates, monoid)

    # Fold prefixes back in.
    inclusive: list[T] = []
    for warp_index, warp in enumerate(scanned):
        prefix = prefixes[warp_index]
        inclusive.extend(monoid.combine(prefix, value) for value in warp)
    if not exclusive:
        return inclusive
    return [monoid.identity()] + inclusive[:-1]


def hierarchical_device_scan(items: Sequence[T], monoid: Monoid[T],
                             block_size: int = 128,
                             warp_size: int = WARP_SIZE,
                             exclusive: bool = True) -> list[T]:
    """The full three-tier scan: warp -> block -> decoupled look-back.

    Equivalent to :func:`repro.scan.decoupled_lookback.single_pass_scan`
    with tiles of ``block_size``, except each tile's local scan runs
    through the explicit warp/block machinery above, making the whole GPU
    scan architecture executable end to end.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    n = len(items)
    if n == 0:
        return []

    # Per-block local scans (tier 1+2), then device-level composition of
    # the block aggregates via decoupled look-back (tier 3).
    blocks = [list(items[start:start + block_size])
              for start in range(0, n, block_size)]
    local_inclusive = [block_scan(b, monoid, warp_size) for b in blocks]
    aggregates = [b[-1] for b in local_inclusive]
    block_prefixes = single_pass_scan(aggregates, monoid, tile_size=4,
                                      exclusive=True)

    out: list[T] = []
    for block_index, block in enumerate(local_inclusive):
        prefix = block_prefixes[block_index]
        out.extend(monoid.combine(prefix, value) for value in block)
    if not exclusive:
        return out
    return [monoid.identity()] + out[:-1]
