"""Vectorised scans used by the production pipeline.

These functions implement the same scans as the scalar algorithms in this
subpackage, but over NumPy arrays with the data-parallel Hillis–Steele
doubling structure, so that an array lane corresponds to a GPU thread.  The
scalar algorithms remain the readable reference; equivalence between the two
is covered by tests.

Two of the scans are ParPaRaw-specific:

* :func:`scan_transition_vectors` scans an ``(n_chunks, |S|)`` array of
  state-transition vectors under composition — paper §3.1;
* :func:`scan_column_offsets` scans ``(kind, value)`` column-offset pairs
  under the rel/abs operator — paper §3.2.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "exclusive_sum",
    "inclusive_sum",
    "compose_vectors",
    "scan_transition_vectors",
    "scan_column_offsets",
]


def inclusive_sum(values: np.ndarray) -> np.ndarray:
    """Inclusive prefix sum as int64 (overflow-safe for byte offsets)."""
    return np.cumsum(values, dtype=np.int64)


def exclusive_sum(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum as int64: output[i] = sum(values[:i]).

    >>> exclusive_sum(np.array([3, 5, 1, 2])).tolist()
    [0, 3, 8, 9]
    """
    out = np.empty(len(values), dtype=np.int64)
    if len(values) == 0:
        return out
    np.cumsum(values[:-1], dtype=np.int64, out=out[1:])
    out[0] = 0
    return out


def compose_vectors(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Compose state-transition vectors element-wise: ``out[i] = b[a[i]]``.

    Both arguments are ``(..., S)`` arrays; the composition applies the
    left-hand chunk first, then the right-hand chunk, for every hypothetical
    start state (paper §3.1).
    """
    return np.take_along_axis(right, left, axis=-1)


def scan_transition_vectors(vectors: np.ndarray,
                            exclusive: bool = True) -> np.ndarray:
    """Scan an ``(n, S)`` array of state-transition vectors by composition.

    Runs the Hillis–Steele doubling scheme across the chunk axis — exactly
    ``ceil(log2 n)`` vectorised sweeps — so the scan itself is the
    data-parallel algorithm of the paper, not a disguised sequential loop.

    Parameters
    ----------
    vectors:
        ``(n, S)`` integer array; row ``c`` maps start state ``i`` to the
        end state after chunk ``c``.
    exclusive:
        If true (default), row ``c`` of the result maps a global start state
        to the state *entering* chunk ``c`` (identity row prepended).

    Returns
    -------
    np.ndarray
        ``(n, S)`` scanned array.
    """
    vectors = np.asarray(vectors)
    if vectors.ndim != 2:
        raise ValueError("expected an (n_chunks, num_states) array")
    n, num_states = vectors.shape
    if n == 0:
        return vectors.copy()
    scanned = vectors.copy()
    offset = 1
    while offset < n:
        # lanes [offset:] combine the vector `offset` positions to their
        # left *before* themselves: new[i] = current[i] ∘-after current[i-offset]
        combined = compose_vectors(scanned[:-offset], scanned[offset:])
        scanned = scanned.copy()
        scanned[offset:] = combined
        offset *= 2
    if not exclusive:
        return scanned
    out = np.empty_like(scanned)
    out[0] = np.arange(num_states, dtype=scanned.dtype)
    out[1:] = scanned[:-1]
    return out


def scan_column_offsets(kinds: np.ndarray, values: np.ndarray,
                        exclusive: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """Scan rel/abs column offsets (paper §3.2) across chunks.

    Parameters
    ----------
    kinds:
        ``(n,)`` boolean array; True where the chunk's offset is *absolute*
        (the chunk contains a record delimiter).
    values:
        ``(n,)`` integer offsets (field-delimiter counts).
    exclusive:
        If true (default), entry ``c`` gives the column offset *entering*
        chunk ``c``; the seed is ``relative(0)``.

    Returns
    -------
    (np.ndarray, np.ndarray)
        Scanned ``(kinds, values)`` pair.  After an exclusive scan over an
        input whose first chunk starts at a record boundary, every entry
        reachable from an absolute offset is absolute.
    """
    kinds = np.asarray(kinds, dtype=bool)
    values = np.asarray(values, dtype=np.int64)
    if kinds.shape != values.shape or kinds.ndim != 1:
        raise ValueError("kinds and values must be equal-length 1-D arrays")
    n = len(kinds)
    if n == 0:
        return kinds.copy(), values.copy()
    acc_kind = kinds.copy()
    acc_value = values.copy()
    offset = 1
    while offset < n:
        left_kind = acc_kind[:-offset]
        left_value = acc_value[:-offset]
        right_kind = acc_kind[offset:]
        right_value = acc_value[offset:]
        # a ⊕ b: absolute right operand wins outright; relative right
        # operand adds onto the left operand and inherits its kind.
        new_kind = np.where(right_kind, True, left_kind)
        new_value = np.where(right_kind, right_value,
                             left_value + right_value)
        acc_kind = acc_kind.copy()
        acc_value = acc_value.copy()
        acc_kind[offset:] = new_kind
        acc_value[offset:] = new_value
        offset *= 2
    if not exclusive:
        return acc_kind, acc_value
    out_kind = np.empty_like(acc_kind)
    out_value = np.empty_like(acc_value)
    out_kind[0] = False
    out_value[0] = 0
    out_kind[1:] = acc_kind[:-1]
    out_value[1:] = acc_value[:-1]
    return out_kind, out_value
