"""Columns and tables: the parsed, columnar output.

A :class:`Column` follows the Arrow buffer layout: fixed-width types carry a
typed data buffer plus a validity bitmap; STRING columns additionally carry
an int64 offsets buffer into a contiguous UTF-8 data buffer.  A
:class:`Table` is an ordered collection of equal-length columns bound to a
:class:`~repro.columnar.schema.Schema`.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.columnar.buffers import ValidityBitmap
from repro.columnar.schema import DataType, Field, Schema
from repro.errors import SchemaError

__all__ = ["Column", "Table", "concat_tables"]


class Column:
    """One typed column with Arrow-style buffers.

    Parameters
    ----------
    field:
        The column's schema field.
    data:
        Fixed-width: ``(n,)`` array of ``field.dtype.numpy_dtype``.
        Variable-width (STRING): the contiguous uint8 value buffer.
    validity:
        Validity bitmap; ``None`` means all rows valid.
    offsets:
        STRING only: ``(n + 1,)`` int64 offsets into ``data``.
    rejects:
        Number of fields that failed conversion (cleared validity +
        counted, matching the paper's reject tracking in Figure 5).
    """

    def __init__(self, field: Field, data: np.ndarray,
                 validity: ValidityBitmap | None = None,
                 offsets: np.ndarray | None = None,
                 rejects: int = 0):
        self.field = field
        self.data = data
        self.offsets = offsets
        self.rejects = rejects
        if field.dtype.is_variable_width:
            if offsets is None:
                raise SchemaError("STRING column requires an offsets buffer")
            if offsets.ndim != 1 or offsets.size == 0:
                raise SchemaError("offsets must be a non-empty 1-D array")
            if data.dtype != np.uint8:
                raise SchemaError("STRING data buffer must be uint8")
            self._length = offsets.size - 1
            if offsets[-1] > data.size:
                raise SchemaError("offsets overrun the data buffer")
        else:
            if offsets is not None:
                raise SchemaError("fixed-width column must not have offsets")
            if data.dtype != field.dtype.numpy_dtype:
                raise SchemaError(
                    f"column {field.name!r} expects dtype "
                    f"{field.dtype.numpy_dtype}, got {data.dtype}")
            self._length = data.size
        if validity is None:
            validity = ValidityBitmap.all_valid(self._length)
        if len(validity) != self._length:
            raise SchemaError("validity bitmap length mismatch")
        self.validity = validity

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_values(field: Field, values: Sequence[Any]) -> "Column":
        """Build a column from Python values (``None`` means NULL)."""
        mask = np.array([v is not None for v in values], dtype=bool)
        validity = ValidityBitmap.from_mask(mask)
        if field.dtype.is_variable_width:
            encoded = [(v.encode("utf-8") if isinstance(v, str) else
                        bytes(v)) if v is not None else b""
                       for v in values]
            offsets = np.zeros(len(values) + 1, dtype=np.int64)
            np.cumsum([len(e) for e in encoded], out=offsets[1:])
            data = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy()
            return Column(field, data, validity, offsets)
        dtype = field.dtype.numpy_dtype
        fill = np.zeros(len(values), dtype=dtype)
        for i, v in enumerate(values):
            if v is not None:
                fill[i] = v
        return Column(field, fill, validity)

    # -- accessors ----------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def null_count(self) -> int:
        return self.validity.null_count()

    def value(self, row: int) -> Any:
        """Materialise one row as a Python value (``None`` for NULL)."""
        if not 0 <= row < self._length:
            raise IndexError("row out of range")
        if not self.validity[row]:
            return None
        if self.field.dtype.is_variable_width:
            assert self.offsets is not None
            lo = int(self.offsets[row])
            hi = int(self.offsets[row + 1])
            return self.data[lo:hi].tobytes().decode("utf-8",
                                                     errors="replace")
        raw = self.data[row]
        if self.field.dtype is DataType.BOOL:
            return bool(raw)
        if self.field.dtype is DataType.FLOAT32 \
                or self.field.dtype is DataType.FLOAT64:
            return float(raw)
        return int(raw)

    def to_list(self) -> list[Any]:
        """Materialise the whole column as Python values."""
        return [self.value(i) for i in range(self._length)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.field.dtype != other.field.dtype or len(self) != len(other):
            return False
        return self.to_list() == other.to_list()

    def __repr__(self) -> str:
        return (f"Column({self.field.name!r}, {self.field.dtype.value}, "
                f"len={self._length}, nulls={self.null_count}, "
                f"rejects={self.rejects})")


class Table:
    """Equal-length columns bound to a schema."""

    def __init__(self, schema: Schema, columns: Sequence[Column]):
        if len(schema) != len(columns):
            raise SchemaError("schema/column count mismatch")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaError(f"columns have differing lengths: {lengths}")
        for field, column in zip(schema, columns):
            if field.dtype != column.field.dtype:
                raise SchemaError(
                    f"column {field.name!r} type mismatch: schema says "
                    f"{field.dtype}, column is {column.field.dtype}")
        self.schema = schema
        self.columns = tuple(columns)

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column(self, key: int | str) -> Column:
        if isinstance(key, str):
            return self.columns[self.schema.index_of(key)]
        return self.columns[key]

    def row(self, index: int) -> tuple[Any, ...]:
        """Materialise one row across all columns."""
        return tuple(c.value(index) for c in self.columns)

    def rows(self) -> Iterator[tuple[Any, ...]]:
        for i in range(self.num_rows):
            yield self.row(i)

    def to_pylist(self) -> list[dict[str, Any]]:
        """Materialise as a list of {name: value} dicts (for tests)."""
        names = self.schema.names
        return [dict(zip(names, row)) for row in self.rows()]

    def total_rejects(self) -> int:
        return sum(c.rejects for c in self.columns)

    def select(self, names: Sequence[str]) -> "Table":
        """Projection: a new table with only the named columns, in order."""
        indexes = [self.schema.index_of(n) for n in names]
        return Table(self.schema.select(names),
                     [self.columns[i] for i in indexes])

    def filter(self, mask) -> "Table":
        """Rows where ``mask`` is true, as a new table.

        ``mask`` is a boolean sequence of length ``num_rows``; used by the
        in-situ query paths to push filters onto the columnar output.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_rows,):
            raise SchemaError(
                f"filter mask must have length {self.num_rows}")
        rows = np.flatnonzero(mask)
        columns: list[Column] = []
        for column in self.columns:
            validity = ValidityBitmap.from_mask(
                column.validity.to_mask()[rows])
            if column.field.dtype.is_variable_width:
                assert column.offsets is not None
                lengths = (column.offsets[1:] - column.offsets[:-1])[rows]
                offsets = np.zeros(rows.size + 1, dtype=np.int64)
                np.cumsum(lengths, out=offsets[1:])
                total = int(offsets[-1])
                if total:
                    src = (np.arange(total, dtype=np.int64)
                           - np.repeat(offsets[:-1], lengths)
                           + np.repeat(column.offsets[:-1][rows], lengths))
                    data = column.data[src]
                else:
                    data = np.empty(0, dtype=np.uint8)
                columns.append(Column(column.field, data, validity,
                                      offsets))
            else:
                columns.append(Column(column.field, column.data[rows],
                                      validity))
        return Table(self.schema, columns)

    def slice(self, start: int, stop: int | None = None) -> "Table":
        """Row range [start, stop) as a new table (buffers copied)."""
        stop = self.num_rows if stop is None else min(stop, self.num_rows)
        start = max(0, start)
        if start > stop:
            start = stop
        columns: list[Column] = []
        for column in self.columns:
            validity = ValidityBitmap.from_mask(
                column.validity.to_mask()[start:stop])
            if column.field.dtype.is_variable_width:
                assert column.offsets is not None
                lo = int(column.offsets[start])
                hi = int(column.offsets[stop])
                offsets = column.offsets[start:stop + 1] - lo
                columns.append(Column(column.field,
                                      column.data[lo:hi].copy(),
                                      validity, offsets.copy()))
            else:
                columns.append(Column(column.field,
                                      column.data[start:stop].copy(),
                                      validity))
        return Table(self.schema, columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (self.schema == other.schema
                and all(a == b for a, b in zip(self.columns, other.columns)))

    def __repr__(self) -> str:
        return (f"Table({self.num_rows} rows x {self.num_columns} cols: "
                f"{', '.join(self.schema.names)})")


def concat_tables(tables: Sequence[Table]) -> Table:
    """Vertically concatenate tables sharing one schema.

    Buffers are concatenated directly (offsets rebased for variable-width
    columns) — this is how the streaming parser stitches per-partition
    results together without materialising Python values.
    """
    if not tables:
        raise SchemaError("concat_tables needs at least one table")
    schema = tables[0].schema
    for table in tables[1:]:
        if table.schema != schema:
            raise SchemaError("cannot concatenate tables with different "
                              "schemas")
    if len(tables) == 1:
        return tables[0]
    columns: list[Column] = []
    for index, field in enumerate(schema):
        parts = [t.columns[index] for t in tables]
        validity = ValidityBitmap.from_mask(
            np.concatenate([p.validity.to_mask() for p in parts]))
        rejects = sum(p.rejects for p in parts)
        if field.dtype.is_variable_width:
            total_rows = sum(len(p) for p in parts)
            offsets = np.zeros(total_rows + 1, dtype=np.int64)
            buffers: list[np.ndarray] = []
            row = 0
            base = 0
            for p in parts:
                assert p.offsets is not None
                lo = int(p.offsets[0])
                hi = int(p.offsets[-1])
                buffers.append(p.data[lo:hi])
                offsets[row + 1:row + len(p) + 1] = p.offsets[1:] - lo + base
                base += hi - lo
                row += len(p)
            data = np.concatenate(buffers) if buffers else \
                np.empty(0, dtype=np.uint8)
            columns.append(Column(field, data, validity, offsets,
                                  rejects=rejects))
        else:
            data = np.concatenate([p.data for p in parts])
            columns.append(Column(field, data, validity, rejects=rejects))
    return Table(schema, columns)
