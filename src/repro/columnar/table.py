"""Columns and tables: the parsed, columnar output.

A :class:`Column` follows the Arrow buffer layout: fixed-width types carry a
typed data buffer plus a validity bitmap; STRING columns additionally carry
an int64 offsets buffer into a contiguous UTF-8 data buffer.  A
:class:`Table` is an ordered collection of equal-length columns bound to a
:class:`~repro.columnar.schema.Schema`.

Every column is backed by a :class:`~repro.columnar.buffers.BufferColumn`
triple, and all structural operations (``filter``/``slice``/``select``/
``concat_tables``) are buffer operations from :mod:`repro.columnar.ops` —
no Python-value materialisation on any of these paths.  ``slice`` returns
views into the parent's buffers (zero-copy), so a sliced STRING column's
offsets generally start at a non-zero base; all consumers in this package
handle that.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.columnar.buffers import BufferColumn, ValidityBitmap
from repro.columnar.ops import concat_buffers, slice_buffers, take_buffers
from repro.columnar.schema import DataType, Field, Schema
from repro.errors import SchemaError

__all__ = ["Column", "Table", "concat_tables"]


class Column:
    """One typed column with Arrow-style buffers.

    Parameters
    ----------
    field:
        The column's schema field.
    data:
        Fixed-width: ``(n,)`` array of ``field.dtype.numpy_dtype``.
        Variable-width (STRING): the contiguous uint8 value buffer.
    validity:
        Validity bitmap; ``None`` means all rows valid.
    offsets:
        STRING only: ``(n + 1,)`` int64 offsets into ``data``.
    rejects:
        Number of fields that failed conversion (cleared validity +
        counted, matching the paper's reject tracking in Figure 5).
    """

    def __init__(self, field: Field, data: np.ndarray,
                 validity: ValidityBitmap | None = None,
                 offsets: np.ndarray | None = None,
                 rejects: int = 0):
        self.field = field
        self.rejects = rejects
        if field.dtype.is_variable_width:
            if offsets is None:
                raise SchemaError("STRING column requires an offsets buffer")
            if offsets.ndim != 1 or offsets.size == 0:
                raise SchemaError("offsets must be a non-empty 1-D array")
            if data.dtype != np.uint8:
                raise SchemaError("STRING data buffer must be uint8")
            self._length = offsets.size - 1
            if offsets[-1] > data.size:
                raise SchemaError("offsets overrun the data buffer")
        else:
            if offsets is not None:
                raise SchemaError("fixed-width column must not have offsets")
            if data.dtype != field.dtype.numpy_dtype:
                raise SchemaError(
                    f"column {field.name!r} expects dtype "
                    f"{field.dtype.numpy_dtype}, got {data.dtype}")
            self._length = data.size
        if validity is None:
            validity = ValidityBitmap.all_valid(self._length)
        if len(validity) != self._length:
            raise SchemaError("validity bitmap length mismatch")
        self.validity = validity
        self._buffers = BufferColumn(self._length,
                                     np.asarray(validity.buffer),
                                     data, offsets)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_buffers(cls, field: Field, buffers: BufferColumn,
                     rejects: int = 0) -> "Column":
        """Wrap a :class:`BufferColumn` triple without copying it."""
        validity = ValidityBitmap(buffers.validity, buffers.length)
        return cls(field, buffers.values, validity, buffers.offsets,
                   rejects=rejects)

    @staticmethod
    def from_values(field: Field, values: Sequence[Any]) -> "Column":
        """Build a column from Python values (``None`` means NULL)."""
        mask = np.array([v is not None for v in values], dtype=bool)
        validity = ValidityBitmap.from_mask(mask)
        if field.dtype.is_variable_width:
            encoded = [(v.encode("utf-8") if isinstance(v, str) else
                        bytes(v)) if v is not None else b""
                       for v in values]
            offsets = np.zeros(len(values) + 1, dtype=np.int64)
            np.cumsum([len(e) for e in encoded], out=offsets[1:])
            data = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy()
            return Column(field, data, validity, offsets)
        dtype = field.dtype.numpy_dtype
        fill = np.zeros(len(values), dtype=dtype)
        for i, v in enumerate(values):
            if v is not None:
                fill[i] = v
        return Column(field, fill, validity)

    # -- accessors ----------------------------------------------------------

    @property
    def buffers(self) -> BufferColumn:
        """The Arrow buffer triple backing this column."""
        return self._buffers

    @property
    def data(self) -> np.ndarray:  # parlint: returns-borrowed
        return self._buffers.values

    @property
    def offsets(self) -> np.ndarray | None:  # parlint: returns-borrowed
        return self._buffers.offsets

    def __len__(self) -> int:
        return self._length

    @property
    def null_count(self) -> int:
        return self.validity.null_count()

    def value(self, row: int) -> Any:
        """Materialise one row as a Python value (``None`` for NULL)."""
        if not 0 <= row < self._length:
            raise IndexError("row out of range")
        if not self.validity[row]:
            return None
        if self.field.dtype.is_variable_width:
            offsets = self._buffers.offsets
            assert offsets is not None
            lo = int(offsets[row])
            hi = int(offsets[row + 1])
            return self.data[lo:hi].tobytes().decode("utf-8",
                                                     errors="replace")
        raw = self.data[row]
        if self.field.dtype is DataType.BOOL:
            return bool(raw)
        if self.field.dtype is DataType.FLOAT32 \
                or self.field.dtype is DataType.FLOAT64:
            return float(raw)
        return int(raw)

    def to_list(self) -> list[Any]:
        """Materialise the whole column as Python values.

        Vectorised: one ``tolist`` per buffer plus a decode loop for
        strings — never routes through per-row :meth:`value` calls.
        """
        mask = self.validity.to_mask().tolist()
        if self.field.dtype.is_variable_width:
            offsets = self._buffers.offsets
            assert offsets is not None
            view = memoryview(np.ascontiguousarray(self.data))
            offs = offsets.tolist()
            return [bytes(view[offs[i]:offs[i + 1]])
                    .decode("utf-8", errors="replace") if valid else None
                    for i, valid in enumerate(mask)]
        values = self.data.tolist()
        return [v if valid else None
                for v, valid in zip(values, mask)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.field.dtype != other.field.dtype or len(self) != len(other):
            return False
        mask = self.validity.to_mask()
        if not np.array_equal(mask, other.validity.to_mask()):
            return False
        # Fast path: compare buffers at valid rows only (invalid rows are
        # don't-cares).  On mismatch, fall back to the materialised
        # comparison so semantics match value()/to_list() exactly.
        if self.field.dtype.is_variable_width:
            rows = np.flatnonzero(mask)
            a = take_buffers(self._buffers, rows)
            b = take_buffers(other._buffers, rows)
            if np.array_equal(a.offsets, b.offsets) \
                    and np.array_equal(a.values, b.values):
                return True
        elif np.array_equal(self.data[mask], other.data[mask]):
            return True
        return self.to_list() == other.to_list()

    def __repr__(self) -> str:
        return (f"Column({self.field.name!r}, {self.field.dtype.value}, "
                f"len={self._length}, nulls={self.null_count}, "
                f"rejects={self.rejects})")


class Table:
    """Equal-length columns bound to a schema."""

    def __init__(self, schema: Schema, columns: Sequence[Column]):
        if len(schema) != len(columns):
            raise SchemaError("schema/column count mismatch")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaError(f"columns have differing lengths: {lengths}")
        for field, column in zip(schema, columns):
            if field.dtype != column.field.dtype:
                raise SchemaError(
                    f"column {field.name!r} type mismatch: schema says "
                    f"{field.dtype}, column is {column.field.dtype}")
        self.schema = schema
        self.columns = tuple(columns)

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column(self, key: int | str) -> Column:
        if isinstance(key, str):
            return self.columns[self.schema.index_of(key)]
        return self.columns[key]

    def row(self, index: int) -> tuple[Any, ...]:
        """Materialise one row across all columns."""
        return tuple(c.value(index) for c in self.columns)

    def rows(self) -> Iterator[tuple[Any, ...]]:
        for i in range(self.num_rows):
            yield self.row(i)

    def to_pylist(self) -> list[dict[str, Any]]:
        """Materialise as a list of {name: value} dicts (for tests)."""
        names = self.schema.names
        return [dict(zip(names, row)) for row in self.rows()]

    def total_rejects(self) -> int:
        return sum(c.rejects for c in self.columns)

    def select(self, names: Sequence[str]) -> "Table":
        """Projection: a new table with only the named columns, in order."""
        indexes = [self.schema.index_of(n) for n in names]
        return Table(self.schema.select(names),
                     [self.columns[i] for i in indexes])

    def filter(self, mask) -> "Table":
        """Rows where ``mask`` is true, as a new table.

        ``mask`` is a boolean sequence of length ``num_rows``; used by the
        in-situ query paths to push filters onto the columnar output.
        Implemented as one buffer gather per column
        (:func:`~repro.columnar.ops.take_buffers`) — no per-row value
        materialisation.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_rows,):
            raise SchemaError(
                f"filter mask must have length {self.num_rows}")
        rows = np.flatnonzero(mask)
        return Table(self.schema,
                     [Column.from_buffers(c.field,
                                          take_buffers(c.buffers, rows))
                      for c in self.columns])

    def slice(self, start: int, stop: int | None = None) -> "Table":
        """Row range [start, stop) as a new table (zero-copy views).

        The returned columns share buffers with this table; STRING
        offsets keep their original base rather than being rebased.
        """
        stop = self.num_rows if stop is None else min(stop, self.num_rows)
        start = max(0, start)
        if start > stop:
            start = stop
        return Table(self.schema,
                     [Column.from_buffers(
                         c.field, slice_buffers(c.buffers, start, stop))
                      for c in self.columns])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (self.schema == other.schema
                and all(a == b for a, b in zip(self.columns, other.columns)))

    def __repr__(self) -> str:
        return (f"Table({self.num_rows} rows x {self.num_columns} cols: "
                f"{', '.join(self.schema.names)})")


def concat_tables(tables: Sequence[Table]) -> Table:
    """Vertically concatenate tables sharing one schema.

    Buffers are concatenated directly (offsets rebased for variable-width
    columns, value bytes copied verbatim) — this is how the streaming
    parser and the sharded executor stitch per-partition results together
    without materialising Python values.
    """
    if not tables:
        raise SchemaError("concat_tables needs at least one table")
    schema = tables[0].schema
    for table in tables[1:]:
        if table.schema != schema:
            raise SchemaError("cannot concatenate tables with different "
                              "schemas")
    if len(tables) == 1:
        return tables[0]
    columns: list[Column] = []
    for index, field in enumerate(schema):
        parts = [t.columns[index] for t in tables]
        merged = concat_buffers([p.buffers for p in parts])
        columns.append(Column.from_buffers(
            field, merged, rejects=sum(p.rejects for p in parts)))
    return Table(schema, columns)
