"""Arrow-style columnar memory format.

The paper configures ParPaRaw's output to comply with the Apache Arrow
columnar format (§5).  ``pyarrow`` is not a dependency here; instead this
subpackage implements the relevant subset of the layout from scratch:

* fixed-width typed columns backed by a data buffer plus a packed validity
  bitmap (LSB-first, as Arrow specifies);
* variable-width (string/binary) columns backed by an int64 offsets buffer
  and a data buffer;
* :class:`~repro.columnar.schema.Schema` / :class:`~repro.columnar.table.Table`
  containers with equality, slicing, and row materialisation for tests.
"""

from repro.columnar.schema import DataType, Field, Schema
from repro.columnar.buffers import (
    BufferColumn,
    ValidityBitmap,
    pack_validity,
    unpack_validity,
)
from repro.columnar import guard
from repro.columnar.ops import concat_buffers, slice_buffers, take_buffers
from repro.columnar.table import Column, Table, concat_tables
from repro.columnar.serialize import (
    deserialize_table,
    read_feather,
    serialize_table,
    write_feather,
)

__all__ = [
    "DataType",
    "Field",
    "Schema",
    "guard",
    "BufferColumn",
    "ValidityBitmap",
    "pack_validity",
    "unpack_validity",
    "concat_buffers",
    "slice_buffers",
    "take_buffers",
    "Column",
    "Table",
    "concat_tables",
    "serialize_table",
    "deserialize_table",
    "write_feather",
    "read_feather",
]
