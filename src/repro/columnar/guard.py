"""Runtime enforcement of the zero-copy borrowing discipline.

The static side of the ownership story is the parlint dataflow tier
(PPR6xx): an AST analysis proving no borrowed view is mutated or
escapes.  This module is the dynamic side: when the guard is enabled,
every zero-copy buffer the columnar layer hands out — ``slice_buffers``
views, the fused convert path's CSS slices and adopted value vectors,
``column_view`` pairs, worker shard views — is marked read-only
(``ndarray.flags.writeable = False``), so any write the analysis missed
raises ``ValueError: assignment destination is read-only`` at the exact
offending line instead of silently corrupting sibling columns.

The guard is off by default (zero overhead beyond one branch per
hand-out).  The parity test suites enable it for every run via an
autouse fixture, which makes "fused output == copying output" a
statement tested *under* the borrowing discipline, not merely alongside
it.

Enabling
--------
* :func:`enable` / :func:`disable` — process-local switch.
* ``REPRO_READONLY_GUARD=1`` in the environment — read once at import,
  which is how the switch reaches ``spawn``-ed pool workers (a module
  global set in the parent does not).

:func:`protect` never mutates the array it is given: a writable input
comes back as a fresh read-only *view* (same memory), so enabling the
guard cannot flip flags on buffers the caller owns.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["enable", "disable", "enabled", "protect"]

_ENV_VAR = "REPRO_READONLY_GUARD"

_enabled = os.environ.get(_ENV_VAR, "") not in ("", "0", "false", "off")


def enable() -> None:
    """Turn the read-only guard on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the read-only guard off for this process."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether handed-out zero-copy buffers are being marked read-only."""
    return _enabled


def protect(array: np.ndarray | None) -> np.ndarray | None:
    """Return ``array`` read-only when the guard is on, untouched when off.

    A writable array comes back as a read-only view of the same memory
    (the input's own flags are never modified); a read-only array and
    ``None`` pass through.  No-op (identity) while the guard is
    disabled, so the hot path pays one branch.
    """
    if not _enabled or array is None:
        return array
    if array.flags.writeable:
        view = array.view()
        view.setflags(write=False)
        return view
    return array
