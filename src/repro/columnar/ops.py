# parlint: hot-path
"""Structural operations on Arrow buffer triples.

Everything the columnar layer does to whole columns — filter, slice,
concatenate — happens here, directly on :class:`BufferColumn` triples
(validity bitmap, offsets, values).  Python values are never
materialised: filter is a vectorised gather, slice is a pure view
(zero-copy; offsets are *not* rebased, the column keeps a non-zero
``offsets[0]``), and concat rebases offsets once per part while the
value buffers are copied verbatim.

This mirrors how ParPaRaw's output stays in Arrow layout end-to-end
(paper §5): a per-column CSS produced by the partition stage *is* the
values buffer of an Arrow string column, and downstream consumers only
shuffle the three buffers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.columnar.buffers import BufferColumn, pack_validity
from repro.columnar.guard import protect
from repro.errors import ColumnarError
from repro.scan import exclusive_sum

__all__ = ["concat_buffers", "slice_buffers", "take_buffers"]


def take_buffers(column: BufferColumn, rows: np.ndarray) -> BufferColumn:
    """Gather the given rows into a new, densely packed column.

    ``rows`` is an int64 array of row indexes (``np.flatnonzero`` of a
    filter mask, or any take/permutation).  Variable-width values are
    gathered with the same double-``np.repeat`` trick the conversion
    stage uses: one source-index vector covering every kept byte, one
    fancy-index read.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size and (int(rows.min()) < 0
                      or int(rows.max()) >= column.length):
        raise ColumnarError("take rows out of range")
    validity = pack_validity(column.validity_mask()[rows])
    if column.offsets is None:
        return BufferColumn(rows.size, validity, column.values[rows])
    lengths = (column.offsets[1:] - column.offsets[:-1])[rows]
    offsets = np.empty(rows.size + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(lengths, out=offsets[1:])
    total = int(offsets[-1])
    if total:
        src = (np.arange(total, dtype=np.int64)
               - np.repeat(offsets[:-1], lengths)
               + np.repeat(column.offsets[:-1][rows], lengths))
        values = column.values[src]
    else:
        values = np.empty(0, dtype=np.uint8)
    return BufferColumn(rows.size, validity, values, offsets)


def slice_buffers(column: BufferColumn, start: int,
                  stop: int) -> BufferColumn:
    """Row range ``[start, stop)`` as views — no buffer is copied.

    The validity bitmap is the one buffer that cannot be viewed when
    ``start`` is not byte-aligned, so it is repacked (``(stop-start)/8``
    bytes — negligible).  For variable-width columns the offsets buffer
    is a view too: the result's ``offsets[0]`` is generally non-zero,
    which every consumer in this package (and the Feather writer, which
    rebases on write) handles.
    """
    if not 0 <= start <= stop <= column.length:
        raise ColumnarError("slice bounds out of range")
    if start % 8 == 0:
        validity = column.validity[start // 8:(stop + 7) // 8]
    else:
        validity = pack_validity(column.validity_mask()[start:stop])
    if column.offsets is None:
        return BufferColumn(stop - start, validity,
                            protect(column.values[start:stop]))
    return BufferColumn(stop - start, validity, protect(column.values),
                        protect(column.offsets[start:stop + 1]))


def concat_buffers(parts: Sequence[BufferColumn]) -> BufferColumn:
    """Vertically concatenate columns: offset-rebase, values verbatim.

    This is the sharded-merge primitive: each shard's values buffer is
    copied once into the output (an unavoidable ``memcpy``), while the
    per-row work is a single vectorised add per part to rebase offsets.
    No per-row Python loop, no value materialisation.
    """
    if not parts:
        raise ColumnarError("concat_buffers needs at least one part")
    if len(parts) == 1:
        part = parts[0]
        if not part.readonly:
            return part
        # Concat is a materialisation point: callers treat its result as
        # owned and writable, so a read-only zero-copy part (a guarded
        # slice, a frombuffer wrap) must be laundered into fresh buffers
        # rather than passed through.
        return BufferColumn(
            part.length, part.validity.copy(), part.values.copy(),
            None if part.offsets is None else part.offsets.copy())
    variable = parts[0].offsets is not None
    if any((p.offsets is not None) != variable for p in parts):
        raise ColumnarError("cannot concatenate fixed- and variable-"
                            "width columns")
    total_rows = sum(p.length for p in parts)
    validity = pack_validity(
        np.concatenate([p.validity_mask() for p in parts]))
    if not variable:
        return BufferColumn(total_rows, validity,
                            np.concatenate([p.values for p in parts]))
    part_bytes = np.array(
        [int(p.offsets[-1]) - int(p.offsets[0]) for p in parts],
        dtype=np.int64)
    bases = exclusive_sum(part_bytes)
    offsets = np.empty(total_rows + 1, dtype=np.int64)
    offsets[0] = 0
    row = 0
    chunks: list[np.ndarray] = []
    for base, p in zip(bases, parts):  # parlint: disable=PPR401 -- iterates over shards (a handful), not rows; per-shard body is one vectorised offset rebase
        lo = int(p.offsets[0])
        chunks.append(p.values[lo:int(p.offsets[-1])])
        offsets[row + 1:row + p.length + 1] = \
            p.offsets[1:] - lo + int(base)
        row += p.length
    values = np.concatenate(chunks) if chunks else \
        np.empty(0, dtype=np.uint8)
    return BufferColumn(total_rows, validity, values, offsets)
