"""Schemas: data types and field declarations for parsed output.

ParPaRaw converts each column's concatenated symbol string to the column's
declared type (paper §3.3).  :class:`DataType` enumerates the types the
reproduction supports — covering the paper's evaluated datasets (text,
numerical, temporal types; §5) — and :class:`Schema` binds them to named
fields with per-field options (default values, nullability).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Iterator

import numpy as np

from repro.errors import SchemaError

__all__ = ["DataType", "Field", "Schema"]


class DataType(Enum):
    """Supported column data types.

    The ``numpy_dtype`` property gives the physical representation; STRING
    columns are variable-width (offsets + data buffers) and return
    ``object`` only for materialised Python values.
    """

    BOOL = "bool"
    INT8 = "int8"
    INT16 = "int16"
    INT32 = "int32"
    INT64 = "int64"
    FLOAT32 = "float32"
    FLOAT64 = "float64"
    DECIMAL = "decimal"      # scaled int64 (fixed scale per field)
    DATE = "date"            # days since Unix epoch, int32
    TIMESTAMP = "timestamp"  # seconds since Unix epoch, int64
    STRING = "string"

    @property
    def numpy_dtype(self) -> np.dtype:
        mapping = {
            DataType.BOOL: np.dtype(np.bool_),
            DataType.INT8: np.dtype(np.int8),
            DataType.INT16: np.dtype(np.int16),
            DataType.INT32: np.dtype(np.int32),
            DataType.INT64: np.dtype(np.int64),
            DataType.FLOAT32: np.dtype(np.float32),
            DataType.FLOAT64: np.dtype(np.float64),
            DataType.DECIMAL: np.dtype(np.int64),
            DataType.DATE: np.dtype(np.int32),
            DataType.TIMESTAMP: np.dtype(np.int64),
            DataType.STRING: np.dtype(object),
        }
        return mapping[self]

    @property
    def is_variable_width(self) -> bool:
        return self is DataType.STRING

    @property
    def is_numeric(self) -> bool:
        return self in _NUMERIC_TYPES

    @property
    def is_temporal(self) -> bool:
        return self in (DataType.DATE, DataType.TIMESTAMP)


_NUMERIC_TYPES = frozenset({
    DataType.INT8, DataType.INT16, DataType.INT32, DataType.INT64,
    DataType.FLOAT32, DataType.FLOAT64, DataType.DECIMAL,
})

#: Widening order used by type inference (paper §4.3): the inferred column
#: type is the maximum over the minimum per-field types.
NUMERIC_WIDENING_ORDER = (
    DataType.INT8, DataType.INT16, DataType.INT32, DataType.INT64,
    DataType.FLOAT64,
)


@dataclass(frozen=True)
class Field:
    """One named, typed column in a schema.

    Parameters
    ----------
    name:
        Column name.
    dtype:
        Column type.
    nullable:
        Whether empty/invalid fields become NULL (otherwise they become the
        default value, or a reject in strict mode).
    default:
        Default value for empty strings (paper §4.3, *Default values*); when
        ``None`` and nullable, empties are NULL.
    decimal_scale:
        Number of fractional digits for DECIMAL fields.
    """

    name: str
    dtype: DataType
    nullable: bool = True
    default: Any = None
    decimal_scale: int = 2

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("field name must be non-empty")
        if self.dtype is DataType.DECIMAL and self.decimal_scale < 0:
            raise SchemaError("decimal scale must be non-negative")


class Schema:
    """An ordered collection of fields.

    >>> schema = Schema([Field("id", DataType.INT64),
    ...                  Field("name", DataType.STRING)])
    >>> len(schema)
    2
    >>> schema["name"].dtype is DataType.STRING
    True
    """

    def __init__(self, fields: Iterable[Field]):
        self._fields = tuple(fields)
        names = [f.name for f in self._fields]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate field names in schema")
        self._by_name = {f.name: i for i, f in enumerate(self._fields)}

    @staticmethod
    def of_types(dtypes: Iterable[DataType],
                 prefix: str = "col") -> "Schema":
        """Build a schema with auto-generated names ``col0, col1, …``."""
        return Schema([Field(f"{prefix}{i}", dt)
                       for i, dt in enumerate(dtypes)])

    @staticmethod
    def all_strings(num_columns: int) -> "Schema":
        """Schema-less parsing target: every column is a string."""
        return Schema.of_types([DataType.STRING] * num_columns)

    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self._fields)

    @property
    def dtypes(self) -> tuple[DataType, ...]:
        return tuple(f.dtype for f in self._fields)

    def index_of(self, name: str) -> int:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no field named {name!r}") from None

    def select(self, names: Iterable[str]) -> "Schema":
        """Projection: a new schema with only the named fields, in order."""
        return Schema([self._fields[self.index_of(n)] for n in names])

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __getitem__(self, key: int | str) -> Field:
        if isinstance(key, str):
            return self._fields[self.index_of(key)]
        return self._fields[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}: {f.dtype.value}" for f in self._fields)
        return f"Schema({inner})"
