"""Validity bitmaps and buffer helpers (Arrow layout).

Arrow represents NULLs with a packed validity bitmap: bit ``i`` (LSB-first
within each byte) is 1 when row ``i`` is valid.  ParPaRaw identifies NULLs
during type conversion (paper §3.3) and the output format follows Arrow
(§5), so the reproduction implements the same packing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ColumnarError

__all__ = ["BufferColumn", "ValidityBitmap", "pack_validity",
           "unpack_validity"]


def pack_validity(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean mask into an LSB-first bitmap (Arrow convention).

    >>> pack_validity(np.array([True, False, True])).tolist()
    [5]
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise ValueError("expected a 1-D boolean mask")
    return np.packbits(mask, bitorder="little")


def unpack_validity(bitmap: np.ndarray, length: int) -> np.ndarray:
    """Unpack an LSB-first bitmap back to a boolean mask of ``length``.

    >>> unpack_validity(np.array([5], dtype=np.uint8), 3).tolist()
    [True, False, True]
    """
    bitmap = np.asarray(bitmap, dtype=np.uint8)
    if length < 0:
        raise ValueError("length must be non-negative")
    if bitmap.size * 8 < length:
        raise ValueError("bitmap too short for requested length")
    return np.unpackbits(bitmap, bitorder="little")[:length].astype(bool)


@dataclass(frozen=True)
class BufferColumn:
    """The Arrow buffer triple backing one column.

    This is the zero-copy currency of the columnar layer: a column is
    fully described by ``(validity, offsets, values)`` plus its logical
    row count, exactly as in the Arrow columnar format.  All structural
    operations (:mod:`repro.columnar.ops`: filter, slice, concat) and the
    Feather-style writer operate on these triples directly, so a column
    produced by the fused partition→convert path travels to the output
    file without ever materialising Python values.

    Attributes
    ----------
    length:
        Logical row count.
    validity:
        Packed LSB-first uint8 validity bitmap (``ceil(length / 8)``
        bytes or more; trailing bits ignored).
    values:
        Typed data buffer — ``(length,)`` of the column's physical dtype
        for fixed-width columns, the contiguous uint8 byte buffer for
        variable-width columns.
    offsets:
        ``(length + 1,)`` int64 offsets into ``values`` for
        variable-width columns; ``None`` for fixed-width.
    """

    length: int
    validity: np.ndarray
    values: np.ndarray
    offsets: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ColumnarError("buffer column length must be >= 0")
        if self.validity.dtype != np.uint8 \
                or self.validity.size * 8 < self.length:
            raise ColumnarError("validity bitmap too short for length")
        if self.offsets is not None:
            if self.offsets.ndim != 1 \
                    or self.offsets.size != self.length + 1:
                raise ColumnarError(
                    "offsets must be a (length + 1,) int64 array")
            if self.values.dtype != np.uint8:
                raise ColumnarError(
                    "variable-width values buffer must be uint8")
            if int(self.offsets[-1]) - int(self.offsets[0]) \
                    > self.values.size - int(self.offsets[0]):
                raise ColumnarError("offsets overrun the values buffer")
        elif self.values.size != self.length:
            raise ColumnarError(
                "fixed-width values buffer length mismatch")

    @property
    def is_variable_width(self) -> bool:
        return self.offsets is not None

    @property
    def readonly(self) -> bool:
        """Whether any backing buffer is marked non-writeable.

        True for zero-copy columns handed out under the read-only guard
        (:mod:`repro.columnar.guard`) and for columns wrapping foreign
        buffers (``np.frombuffer`` of ``bytes``).  Materialisation
        points (``concat_buffers``) use this to decide when "return the
        input" must become "return a fresh owned copy".
        """
        if not self.values.flags.writeable \
                or not self.validity.flags.writeable:
            return True
        return self.offsets is not None \
            and not self.offsets.flags.writeable

    def validity_mask(self) -> np.ndarray:
        """The validity bitmap as a ``(length,)`` boolean mask."""
        return unpack_validity(self.validity, self.length)

    def nbytes(self) -> int:
        """Total bytes across the triple (diagnostics/metrics)."""
        return int(self.validity.nbytes + self.values.nbytes
                   + (self.offsets.nbytes if self.offsets is not None
                      else 0))


class ValidityBitmap:
    """A packed validity bitmap with Arrow semantics.

    Stores the packed representation; exposes bit-level reads, a popcount
    (number of valid rows), and conversion to/from boolean masks.
    """

    def __init__(self, bitmap: np.ndarray, length: int):
        bitmap = np.asarray(bitmap, dtype=np.uint8)
        if bitmap.size * 8 < length:
            raise ValueError("bitmap too short for requested length")
        self._bitmap = bitmap
        self._length = length

    @staticmethod
    def from_mask(mask: np.ndarray) -> "ValidityBitmap":
        mask = np.asarray(mask, dtype=bool)
        return ValidityBitmap(pack_validity(mask), len(mask))

    @staticmethod
    def all_valid(length: int) -> "ValidityBitmap":
        return ValidityBitmap.from_mask(np.ones(length, dtype=bool))

    @property
    def buffer(self) -> np.ndarray:
        """The packed uint8 buffer (read-only view)."""
        view = self._bitmap.view()
        view.setflags(write=False)
        return view

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> bool:
        if not 0 <= index < self._length:
            raise IndexError("validity index out of range")
        byte = self._bitmap[index >> 3]
        return bool((byte >> (index & 7)) & 1)

    def to_mask(self) -> np.ndarray:
        return unpack_validity(self._bitmap, self._length)

    def null_count(self) -> int:
        """Number of NULL (invalid) rows."""
        return int(self._length - np.count_nonzero(self.to_mask()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValidityBitmap):
            return NotImplemented
        if self._length != other._length:
            return False
        return bool(np.array_equal(self.to_mask(), other.to_mask()))

    def __repr__(self) -> str:
        return (f"ValidityBitmap(length={self._length}, "
                f"nulls={self.null_count()})")
