"""Serialisation of tables to Arrow-flavoured binary formats.

The paper's output "complies with the format specified by Apache Arrow"
(§5) so downstream engines can consume it zero-copy.  This module writes
a table's buffers — schema description, validity bitmaps, offsets, data —
into contiguous byte streams, and reads them back, without a ``pyarrow``
dependency.  Two framings:

**RPRW1** (:func:`serialize_table` / :func:`deserialize_table`) — the
original compact stream: length-prefixed buffers, native byte order.

Layout::

    magic b"RPRW1"
    u32 schema_json_length, schema JSON (names, dtypes, scales, nullable)
    u64 num_rows
    per column:
        u64 validity_bytes,  validity bitmap buffer
        [variable-width only] u64 offsets_bytes, int64 offsets buffer
        u64 data_bytes, data buffer

**Feather-style** (:func:`write_feather` / :func:`read_feather`) — a
random-access framing in the spirit of Feather/Arrow IPC files: a
versioned JSON header maps every buffer (explicit numpy dtype string,
hence explicit endianness; absolute offset; byte length), and the buffer
bytes follow verbatim at 8-byte-aligned offsets.  A reader can locate and
map any single buffer from the header alone.  Buffers from a non-native
byte order round-trip: the dtype string records the order and
:func:`read_feather` swaps to native on load.

Layout::

    magic b"RPFE" + u16 version (1)
    u32 header_json_length, header JSON, zero padding to 8-byte alignment
    buffer bytes, each buffer starting at an 8-byte-aligned offset
    (absolute offsets + byte lengths recorded in the header)

Both readers reject malformed streams (bad magic, truncation, trailing
bytes) and both writers guard their length fields against overflow with
:class:`~repro.errors.ColumnarError` instead of silently truncating.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

import numpy as np

from repro.columnar.buffers import ValidityBitmap
from repro.columnar.schema import DataType, Field, Schema
from repro.columnar.table import Column, Table
from repro.errors import ColumnarError

__all__ = ["serialize_table", "deserialize_table", "write_feather",
           "read_feather"]

MAGIC = b"RPRW1"
FEATHER_MAGIC = b"RPFE"
FEATHER_VERSION = 1

#: Maximum values representable in the formats' length fields.  Module
#: constants (rather than inline literals) so overflow tests can lower
#: them without materialising multi-GiB payloads.
_U32_MAX = 0xFFFF_FFFF
_U64_MAX = 0xFFFF_FFFF_FFFF_FFFF


def _checked_u32(value: int, what: str) -> bytes:
    if value > _U32_MAX:
        raise ColumnarError(
            f"{what} ({value} bytes) exceeds the u32 length field")
    return struct.pack("<I", value)


def _checked_u64(value: int, what: str) -> bytes:
    if value > _U64_MAX:
        raise ColumnarError(
            f"{what} ({value}) exceeds the u64 length field")
    return struct.pack("<Q", value)


def _column_wire_buffers(column: Column
                         ) -> tuple[np.ndarray, np.ndarray | None,
                                    np.ndarray]:
    # parlint: returns-borrowed -- wire buffers alias the column by design
    """The (validity, offsets, values) triple as written to disk.

    Zero-copy sliced columns view a larger shared values buffer through
    non-zero-based offsets; on the wire both formats are canonical —
    offsets rebased to zero and values cut to the referenced range.
    """
    validity = np.asarray(column.validity.buffer)
    if column.field.dtype.is_variable_width:
        offsets = column.offsets
        assert offsets is not None
        offsets = offsets.astype(np.int64, copy=False)
        lo = int(offsets[0])
        if lo:
            offsets = offsets - lo
        values = column.data[lo:int(offsets[-1]) + lo]
        return validity, offsets, values
    return validity, None, column.data


def _schema_json(schema: Schema) -> list[dict]:
    return [
        {
            "name": f.name,
            "dtype": f.dtype.value,
            "nullable": f.nullable,
            "decimal_scale": f.decimal_scale,
        }
        for f in schema
    ]


def _schema_from_json(entries: list[dict]) -> Schema:
    return Schema([Field(name=entry["name"],
                         dtype=DataType(entry["dtype"]),
                         nullable=entry["nullable"],
                         decimal_scale=entry["decimal_scale"])
                   for entry in entries])


# -- RPRW1: compact length-prefixed stream -----------------------------------

def _write_buffer(parts: list[bytes], buffer: np.ndarray) -> None:
    raw = buffer.tobytes()
    parts.append(_checked_u64(len(raw), "buffer"))
    parts.append(raw)


def serialize_table(table: Table) -> bytes:
    """Serialise a table into one byte string."""
    schema_json = json.dumps(_schema_json(table.schema)).encode("utf-8")

    parts: list[bytes] = [MAGIC,
                          _checked_u32(len(schema_json), "schema JSON"),
                          schema_json,
                          _checked_u64(table.num_rows, "row count")]
    for column in table.columns:
        validity, offsets, values = _column_wire_buffers(column)
        _write_buffer(parts, validity)
        if offsets is not None:
            _write_buffer(parts, offsets)
        _write_buffer(parts, values)
    return b"".join(parts)


class _Reader:
    def __init__(self, raw: bytes):
        self.raw = raw
        self.pos = 0

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.raw):
            raise ColumnarError("truncated table stream")
        out = self.raw[self.pos:self.pos + count]
        self.pos += count
        return out

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.take(8))[0]

    def buffer(self, dtype) -> np.ndarray:
        length = self.u64()
        return np.frombuffer(self.take(length), dtype=dtype).copy()


def deserialize_table(raw: bytes) -> Table:
    """Read a table serialised by :func:`serialize_table`."""
    reader = _Reader(raw)
    if reader.take(len(MAGIC)) != MAGIC:
        raise ColumnarError("not a serialised table (bad magic)")
    schema = _schema_from_json(
        json.loads(reader.take(reader.u32()).decode("utf-8")))
    num_rows = reader.u64()

    columns: list[Column] = []
    for f in schema:
        validity_buf = reader.buffer(np.uint8)
        validity = ValidityBitmap(validity_buf, num_rows)
        if f.dtype.is_variable_width:
            offsets = reader.buffer(np.int64)
            data = reader.buffer(np.uint8)
            columns.append(Column(f, data, validity, offsets))
        else:
            data = reader.buffer(f.dtype.numpy_dtype)
            columns.append(Column(f, data, validity))
    if reader.pos != len(raw):
        raise ColumnarError("trailing bytes after table stream")
    return Table(schema, columns)


# -- Feather-style: versioned header + aligned verbatim buffers --------------

_ALIGN = 8


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def write_feather(table: Table, path: str | Path | None = None) -> bytes:
    """Serialise a table in the Feather-style framed format.

    Returns the byte stream; when ``path`` is given the stream is also
    written to that file.  Every buffer lands verbatim (no re-encoding)
    at an 8-byte-aligned offset recorded in the header together with its
    exact numpy dtype string — including byte order — so a reader can
    map buffers individually and detect foreign endianness.
    """
    column_entries: list[dict] = []
    payload: list[np.ndarray] = []
    # Header length shifts the buffer region, so record buffer offsets
    # relative to the region start and rebase after sizing the header.
    cursor = 0
    for column, field in zip(table.columns, table.schema):
        validity, offsets, values = _column_wire_buffers(column)
        buffers = []
        for kind, buf in (("validity", validity), ("offsets", offsets),
                          ("values", values)):
            if buf is None:
                continue
            cursor = _aligned(cursor)
            nbytes = int(buf.nbytes)
            if nbytes > _U64_MAX:
                raise ColumnarError(
                    f"{kind} buffer of column {field.name!r} ({nbytes} "
                    f"bytes) exceeds the u64 length field")
            buffers.append({"kind": kind, "dtype": buf.dtype.str,
                            "offset": cursor, "length": nbytes})
            payload.append(buf)
            cursor += nbytes
        column_entries.append({**_schema_json(Schema([field]))[0],
                               "buffers": buffers})

    header = {
        "version": FEATHER_VERSION,
        "num_rows": table.num_rows,
        "columns": column_entries,
    }
    # The buffer region starts after the header, but the header encodes
    # the buffers' absolute offsets — whose digit count depends on the
    # region start.  Iterate to the (monotone, quickly reached) fixed
    # point.
    relative = [buf["offset"] for entry in column_entries
                for buf in entry["buffers"]]
    region_start = 0
    while True:
        specs = [buf for entry in column_entries
                 for buf in entry["buffers"]]
        for spec, rel in zip(specs, relative):
            spec["offset"] = rel + region_start
        header_json = json.dumps(header).encode("utf-8")
        prefix_len = len(FEATHER_MAGIC) + 2 + 4 + len(header_json)
        if _aligned(prefix_len) == region_start:
            break
        region_start = _aligned(prefix_len)

    parts: list[bytes] = [FEATHER_MAGIC,
                          struct.pack("<H", FEATHER_VERSION),
                          _checked_u32(len(header_json), "feather header"),
                          header_json,
                          b"\x00" * (region_start - prefix_len)]
    pos = region_start
    for buf in payload:
        aligned = _aligned(pos)
        parts.append(b"\x00" * (aligned - pos))
        raw = buf.tobytes()
        parts.append(raw)
        pos = aligned + len(raw)
    stream = b"".join(parts)
    if path is not None:
        Path(path).write_bytes(stream)
    return stream


def read_feather(source: bytes | str | Path) -> Table:
    """Read a table written by :func:`write_feather`.

    ``source`` is the byte stream or a file path.  Buffers recorded with
    a non-native byte order are swapped to native on load.
    """
    raw = source if isinstance(source, bytes) else \
        Path(source).read_bytes()
    prefix = len(FEATHER_MAGIC)
    if raw[:prefix] != FEATHER_MAGIC:
        raise ColumnarError("not a feather-style table (bad magic)")
    if len(raw) < prefix + 6:
        raise ColumnarError("truncated feather stream")
    version, = struct.unpack_from("<H", raw, prefix)
    if version != FEATHER_VERSION:
        raise ColumnarError(f"unsupported feather version {version}")
    header_len, = struct.unpack_from("<I", raw, prefix + 2)
    header_end = prefix + 6 + header_len
    if header_end > len(raw):
        raise ColumnarError("truncated feather stream")
    header = json.loads(raw[prefix + 6:header_end].decode("utf-8"))
    num_rows = int(header["num_rows"])

    columns: list[Column] = []
    fields: list[Field] = []
    # The stream ends exactly at the last buffer's end (the buffer region
    # start when there are no buffers) — anything beyond is trailing
    # garbage, anything short is truncation.
    end = _aligned(header_end)
    for entry in header["columns"]:
        field = Field(name=entry["name"],
                      dtype=DataType(entry["dtype"]),
                      nullable=entry["nullable"],
                      decimal_scale=entry["decimal_scale"])
        buffers: dict[str, np.ndarray] = {}
        for spec in entry["buffers"]:
            offset, length = int(spec["offset"]), int(spec["length"])
            if offset % _ALIGN:
                raise ColumnarError(
                    f"misaligned {spec['kind']} buffer at {offset}")
            if offset + length > len(raw):
                raise ColumnarError("truncated feather stream")
            dtype = np.dtype(spec["dtype"])
            if length % dtype.itemsize:
                raise ColumnarError(
                    f"{spec['kind']} buffer length {length} is not a "
                    f"multiple of its item size {dtype.itemsize}")
            buf = np.frombuffer(raw, dtype=dtype,
                                count=length // dtype.itemsize,
                                offset=offset)
            if dtype.byteorder not in ("=", "|") \
                    and dtype != dtype.newbyteorder("="):
                buf = buf.astype(dtype.newbyteorder("="))
            else:
                buf = buf.copy()
            buffers[spec["kind"]] = buf
            end = max(end, offset + length)
        validity = ValidityBitmap(buffers["validity"], num_rows)
        if field.dtype.is_variable_width:
            columns.append(Column(field, buffers["values"], validity,
                                  buffers["offsets"]))
        else:
            columns.append(Column(field, buffers["values"], validity))
        fields.append(field)
    if len(raw) != end:
        raise ColumnarError("feather stream length mismatch "
                            "(trailing or missing bytes)")
    return Table(Schema(fields), columns)
