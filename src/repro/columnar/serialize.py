"""Serialisation of tables to a simple Arrow-flavoured binary format.

The paper's output "complies with the format specified by Apache Arrow"
(§5) so downstream engines can consume it zero-copy.  This module writes
a table's buffers — schema description, validity bitmaps, offsets, data —
into one contiguous byte stream, and reads them back.  The format is this
library's own framing (magic ``RPRW1``, little-endian lengths) around the
Arrow buffer *contents*; it exists so the streaming example and tests can
demonstrate a full parse -> serialise -> load round trip without a
``pyarrow`` dependency.

Layout::

    magic b"RPRW1"
    u32 schema_json_length, schema JSON (names, dtypes, scales, nullable)
    u64 num_rows
    per column:
        u64 validity_bytes,  validity bitmap buffer
        [variable-width only] u64 offsets_bytes, int64 offsets buffer
        u64 data_bytes, data buffer
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.columnar.buffers import ValidityBitmap, pack_validity
from repro.columnar.schema import DataType, Field, Schema
from repro.columnar.table import Column, Table
from repro.errors import SchemaError

__all__ = ["serialize_table", "deserialize_table"]

MAGIC = b"RPRW1"


def _write_buffer(parts: list[bytes], buffer: np.ndarray) -> None:
    raw = buffer.tobytes()
    parts.append(struct.pack("<Q", len(raw)))
    parts.append(raw)


def serialize_table(table: Table) -> bytes:
    """Serialise a table into one byte string."""
    schema_json = json.dumps([
        {
            "name": f.name,
            "dtype": f.dtype.value,
            "nullable": f.nullable,
            "decimal_scale": f.decimal_scale,
        }
        for f in table.schema
    ]).encode("utf-8")

    parts: list[bytes] = [MAGIC,
                          struct.pack("<I", len(schema_json)), schema_json,
                          struct.pack("<Q", table.num_rows)]
    for column in table.columns:
        _write_buffer(parts, np.asarray(column.validity.buffer))
        if column.field.dtype.is_variable_width:
            assert column.offsets is not None
            _write_buffer(parts, column.offsets.astype(np.int64))
        _write_buffer(parts, column.data)
    return b"".join(parts)


class _Reader:
    def __init__(self, raw: bytes):
        self.raw = raw
        self.pos = 0

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.raw):
            raise SchemaError("truncated table stream")
        out = self.raw[self.pos:self.pos + count]
        self.pos += count
        return out

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.take(8))[0]

    def buffer(self, dtype) -> np.ndarray:
        length = self.u64()
        return np.frombuffer(self.take(length), dtype=dtype).copy()


def deserialize_table(raw: bytes) -> Table:
    """Read a table serialised by :func:`serialize_table`."""
    reader = _Reader(raw)
    if reader.take(len(MAGIC)) != MAGIC:
        raise SchemaError("not a serialised table (bad magic)")
    schema_json = json.loads(reader.take(reader.u32()).decode("utf-8"))
    fields = [Field(name=entry["name"],
                    dtype=DataType(entry["dtype"]),
                    nullable=entry["nullable"],
                    decimal_scale=entry["decimal_scale"])
              for entry in schema_json]
    schema = Schema(fields)
    num_rows = reader.u64()

    columns: list[Column] = []
    for f in fields:
        validity_buf = reader.buffer(np.uint8)
        validity = ValidityBitmap(validity_buf, num_rows)
        if f.dtype.is_variable_width:
            offsets = reader.buffer(np.int64)
            data = reader.buffer(np.uint8)
            columns.append(Column(f, data, validity, offsets))
        else:
            data = reader.buffer(f.dtype.numpy_dtype)
            columns.append(Column(f, data, validity))
    if reader.pos != len(raw):
        raise SchemaError("trailing bytes after table stream")
    return Table(schema, columns)
