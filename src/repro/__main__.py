"""Command-line interface: ``python -m repro``.

Subcommands:

* ``parse FILE`` — parse a delimiter-separated file and print rows (or a
  summary / serialised columnar output);
* ``infer FILE`` — report inferred column types (paper §4.3);
* ``sniff FILE`` — guess the dialect (delimiter, quoting, comments);
* ``simulate`` — print the simulated Titan X step breakdown and
  end-to-end streaming time for a given workload shape;
* ``lint [PATHS...]`` — run the parlint static-analysis checkers
  (stage contracts, scan-operator laws, multiprocess safety, hot-path
  vectorisation, API hygiene; see ``docs/PARLINT.md``);
* ``serve`` — run the multi-tenant ingest service: a socket front end
  multiplexing concurrent parse requests onto one shared warm executor
  (see ``docs/SERVICE.md``);
* ``batches`` / ``checkhealth`` — query a running ``serve`` instance
  for its recent request history / health flags.

``--workers N`` (parse/infer) runs the stage pipeline on the sharded
multiprocess executor; ``--timings`` (parse) prints the per-stage
wall-clock breakdown under the paper's step names.  ``--trace OUT.json``
(parse/simulate) writes a Chrome ``trace_event`` timeline — open it in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` — and
``--metrics`` prints the :mod:`repro.obs` counter/gauge/histogram report
(see ``docs/OBSERVABILITY.md``).

Examples::

    python -m repro parse data.csv --limit 5
    python -m repro parse data.csv --delimiter ';' --comment '#' --summary
    python -m repro parse data.csv --workers 4 --timings --summary
    python -m repro parse data.csv --workers 4 --trace out.json --metrics
    python -m repro parse data.csv --plan auto --summary
    python -m repro infer data.csv
    python -m repro simulate --dataset yelp --size-mb 512 --chunk 31
    python -m repro simulate --trace schedule.json
    python -m repro lint src --format json
    python -m repro serve --port 7654 --workers 4
    python -m repro batches --port 7654
    python -m repro checkhealth --port 7654 --full
"""

from __future__ import annotations

import argparse
import sys

from repro import (
    ColumnCountPolicy,
    Dialect,
    ParPaRawParser,
    ParseOptions,
    PartitionStrategy,
    TaggingMode,
)
from repro.columnar.serialize import serialize_table, write_feather
from repro.exec import SerialExecutor, ShardedExecutor
from repro.gpusim.cost_model import PipelineCostModel, WorkloadStats
from repro.kernels.strided import DEFAULT_TABLE_BUDGET
from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    render_text_report,
    write_chrome_trace,
)
from repro.streaming import StreamingPipeline

MB = 1024 ** 2


def _dialect_from_args(args: argparse.Namespace) -> Dialect:
    return Dialect(
        delimiter=args.delimiter.encode(),
        quote=args.quote.encode() if args.quote else None,
        comment=args.comment.encode() if args.comment else None,
        strip_carriage_return=not args.no_crlf,
    )


def _options_from_args(args: argparse.Namespace) -> ParseOptions:
    return ParseOptions(
        dialect=_dialect_from_args(args),
        chunk_size=args.chunk,
        kernel_stride=args.stride,
        kernel_table_budget=getattr(args, "table_budget",
                                    DEFAULT_TABLE_BUDGET),
        minimize_dfa=not getattr(args, "no_minimize", False),
        tagging_mode=TaggingMode(args.tagging_mode),
        partition_strategy=None if args.partition_strategy == "auto"
        else PartitionStrategy(args.partition_strategy),
        infer_types=getattr(args, "infer_types", False),
        column_count_policy=ColumnCountPolicy(args.column_policy),
        plan=None if getattr(args, "plan", "off") == "off" else args.plan,
    )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _executor_from_args(args: argparse.Namespace):
    workers = getattr(args, "workers", 1)
    if workers > 1:
        return ShardedExecutor(workers=workers)
    return SerialExecutor()


def _print_timings(result) -> None:
    print("step timings:")
    for step, seconds in sorted(result.step_seconds().items()):
        print(f"  {step:<10} {seconds * 1e3:8.2f} ms")
    rate = result.parsing_rate()
    print(f"  {'total':<10} {result.timer.total() * 1e3:8.2f} ms"
          + (f"  ({rate / 1e6:.1f} MB/s)" if rate else ""))


def _obs_from_args(args: argparse.Namespace):
    """(tracer, metrics) — real sinks only when the flags ask for them."""
    observe = bool(getattr(args, "trace", None)) \
        or bool(getattr(args, "metrics", False))
    if not observe:
        return NULL_TRACER, NULL_METRICS
    return Tracer(), MetricsRegistry()


def _emit_obs(args: argparse.Namespace, tracer, metrics) -> None:
    """Write ``--trace`` / print ``--metrics`` output, if requested."""
    if getattr(args, "trace", None):
        write_chrome_trace(args.trace, tracer.spans, metrics)
        print(f"wrote {len(tracer.spans)} trace spans to {args.trace} "
              f"(open in https://ui.perfetto.dev)")
    if getattr(args, "metrics", False):
        print(render_text_report(tracer, metrics))


def cmd_parse(args: argparse.Namespace) -> int:
    with open(args.file, "rb") as handle:
        data = handle.read()
    tracer, metrics = _obs_from_args(args)
    options = _options_from_args(args)
    planner = None
    if options.plan == "auto":
        from repro.plan import Planner
        planner = Planner(tracer=tracer, metrics=metrics)
        decision = planner.plan(data, options)
        w = decision.winner
        print(f"plan: chunk={w.chunk_size} stride={w.stride} "
              f"partition={w.strategy} workers={decision.workers} "
              f"({decision.modelled_seconds * 1e3:.2f} ms modelled, "
              f"fingerprint {decision.fingerprint})")
        # An explicit --workers wins; otherwise follow the planner.
        if args.workers == 1 and decision.workers > 1:
            args.workers = decision.workers
        # Parse with the decision directly (plan=None) so the parser
        # does not probe and plan a second time; keeping the planner
        # attached still feeds the measurement back into its store.
        options = decision.chosen
    executor = _executor_from_args(args)
    try:
        result = ParPaRawParser(options, executor=executor,
                                tracer=tracer, metrics=metrics,
                                planner=planner).parse(data)
    finally:
        executor.close()
    table = result.table

    _emit_obs(args, tracer, metrics)
    if args.timings:
        _print_timings(result)
    if args.output:
        fmt = getattr(args, "output_format", "auto") or "auto"
        if fmt == "auto":
            fmt = "feather" if args.output.endswith(".feather") else "rprw"
        if fmt == "feather":
            write_feather(table, args.output)
        else:
            with open(args.output, "wb") as handle:
                handle.write(serialize_table(table))
        print(f"wrote {table.num_rows} rows x {table.num_columns} columns "
              f"to {args.output} ({fmt})")
        return 0
    if args.summary:
        print(f"records:  {result.num_records}")
        print(f"rows:     {result.num_rows}")
        print(f"rejected: {result.rejected_records} records, "
              f"{result.total_rejected_fields} fields")
        print(f"columns:  {', '.join(table.schema.names)}")
        print(f"end state: {result.validation.final_state_name} "
              f"({'ok' if result.validation.is_valid else 'INVALID'})")
        for step, seconds in sorted(result.step_seconds().items()):
            print(f"  {step:<10} {seconds * 1e3:8.2f} ms")
        return 0
    print("\t".join(table.schema.names))
    for i, row in enumerate(table.rows()):
        if args.limit is not None and i >= args.limit:
            print(f"... ({table.num_rows - args.limit} more rows)")
            break
        print("\t".join("NULL" if v is None else str(v) for v in row))
    return 0


def cmd_infer(args: argparse.Namespace) -> int:
    with open(args.file, "rb") as handle:
        data = handle.read()
    options = _options_from_args(args).with_(infer_types=True)
    executor = _executor_from_args(args)
    try:
        result = ParPaRawParser(options, executor=executor).parse(data)
    finally:
        executor.close()
    print(f"{result.num_rows} records, inferred schema:")
    for field in result.table.schema:
        print(f"  {field.name:<10} {field.dtype.value}")
    return 0


def cmd_sniff(args: argparse.Namespace) -> int:
    from repro.dfa.sniffer import sniff_dialect
    with open(args.file, "rb") as handle:
        sample = handle.read(64 * 1024)
    result = sniff_dialect(sample)
    dialect = result.dialect
    print(f"delimiter: {dialect.delimiter!r}")
    print(f"quote:     {dialect.quote!r}")
    print(f"comment:   {dialect.comment!r}")
    print(f"columns:   {result.num_columns} "
          f"(consistency {result.consistency:.0%}, "
          f"{result.records_sampled} records sampled)")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    factory = WorkloadStats.yelp_like if args.dataset == "yelp" \
        else WorkloadStats.taxi_like
    stats = factory(args.size_mb * MB, chunk_size=args.chunk)
    model = PipelineCostModel()
    costs = model.step_costs(stats)
    print(f"simulated Titan X (Pascal), {args.dataset}-shaped workload, "
          f"{args.size_mb} MB, {args.chunk} B chunks:")
    for step, seconds in costs.as_dict().items():
        print(f"  {step:<10} {seconds * 1e3:8.2f} ms")
    print(f"  {'total':<10} {costs.total * 1e3:8.2f} ms  "
          f"({stats.input_bytes / costs.total / 1e9:.2f} GB/s)")

    pipeline = StreamingPipeline()
    schedule = pipeline.simulate(stats.input_bytes,
                                 args.partition_mb * MB, factory)
    print(f"streamed end-to-end ({args.partition_mb} MB partitions): "
          f"{schedule.makespan:.3f} s")

    if args.trace or args.metrics:
        from repro.streaming.pipeline import RESOURCES
        metrics = MetricsRegistry()
        metrics.gauge("sim.makespan_seconds", schedule.makespan)
        metrics.gauge("sim.overlap_efficiency",
                      schedule.overlap_efficiency())
        metrics.gauge("sim.fill_drain_seconds",
                      schedule.fill_drain_seconds())
        for resource in RESOURCES:
            metrics.gauge(f"sim.busy.{resource}",
                          schedule.resource_busy_time(resource))
        print(f"bottleneck resource: {schedule.bottleneck()}")
        if args.trace:
            write_chrome_trace(args.trace, schedule.spans(), metrics)
            print(f"wrote {len(schedule.records)} schedule spans to "
                  f"{args.trace} (open in https://ui.perfetto.dev)")
        if args.metrics:
            print(render_text_report(metrics=metrics))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.serve import IngestServer, IngestService, ServiceConfig

    config = ServiceConfig(
        workers=args.workers,
        dispatchers=args.dispatchers,
        queue_capacity=args.queue_capacity,
        max_request_bytes=args.max_request_mb * MB,
        default_timeout=args.request_timeout,
        default_options=_options_from_args(args),
    )
    service = IngestService(config)
    server = IngestServer(service, host=args.host, port=args.port,
                          own_service=True)
    print(f"repro serve listening on {server.host}:{server.port} "
          f"(workers={config.workers}, "
          f"dispatchers={config.dispatchers}, "
          f"queue={config.queue_capacity})", flush=True)

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        print("repro serve draining...", flush=True)
        server.close()
        print("repro serve drained cleanly", flush=True)
    return 0


def _remote_status(args: argparse.Namespace) -> dict | None:
    from repro.serve import RemoteClient
    try:
        return RemoteClient(args.host, args.port).status()
    except OSError as error:
        print(f"cannot reach a serve instance at "
              f"{args.host}:{args.port}: {error}", file=sys.stderr)
        return None


def cmd_batches(args: argparse.Namespace) -> int:
    from repro.serve.status import render_batches, render_status
    status = _remote_status(args)
    if status is None:
        return 1
    if args.full:
        print(render_status(status))
        print()
    print(render_batches(status, limit=args.limit))
    return 0


def cmd_checkhealth(args: argparse.Namespace) -> int:
    from repro.serve.status import health_flags, render_checkhealth, \
        render_status
    status = _remote_status(args)
    if status is None:
        return 1
    if args.full:
        print(render_status(status))
        print()
    print(render_checkhealth(status))
    return 1 if any(severity == "error"
                    for severity, _ in health_flags(status)) else 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import main as lint_main
    return lint_main(args.paths, output_format=args.format,
                     list_codes=args.list_codes, select=args.select,
                     ignore=args.ignore)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ParPaRaw: massively parallel parsing of "
                    "delimiter-separated raw data (reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--delimiter", default=",")
        p.add_argument("--quote", default='"')
        p.add_argument("--comment", default=None)
        p.add_argument("--no-crlf", action="store_true",
                       help="disable CRLF normalisation")
        p.add_argument("--chunk", type=int, default=31,
                       help="chunk size in bytes (paper default: 31)")
        p.add_argument("--stride", type=_positive_int, default=None,
                       metavar="K",
                       help="symbols per kernel step for the byte-bound "
                            "sweeps: 8/4/2 use precomposed SWAR k-gram "
                            "tables, 1 forces the unit-stride reference "
                            "path (default: auto — widest stride whose "
                            "tables fit the table budget)")
        p.add_argument("--table-budget", type=_positive_int,
                       default=DEFAULT_TABLE_BUDGET, metavar="BYTES",
                       help="byte ceiling for the auto stride picker's "
                            "precomposed k-gram tables (default: 4 MiB)")
        p.add_argument("--no-minimize", action="store_true",
                       help="run sweeps on the raw dialect DFA instead of "
                            "the canonical minimised automaton")
        p.add_argument("--tagging-mode", default="tagged",
                       choices=[m.value for m in TaggingMode])
        p.add_argument("--partition-strategy", default="auto",
                       choices=["auto"] + [s.value
                                           for s in PartitionStrategy],
                       help="phase 3a CSS materialisation: field-run "
                            "(O(n) segment gather), radix (GPU-faithful "
                            "sort), or auto (default: field-run when the "
                            "tags are run-structured)")
        p.add_argument("--column-policy", default="lenient",
                       choices=[p.value for p in ColumnCountPolicy])
        p.add_argument("--workers", type=_positive_int, default=1,
                       metavar="N",
                       help="worker processes for the sharded executor "
                            "(1 = serial, the default)")
        p.add_argument("--plan", default="off", choices=("off", "auto"),
                       help="auto = let the self-tuning planner probe "
                            "the input and pick chunk size, stride and "
                            "partition strategy with its calibrated "
                            "cost model (see docs/PLANNER.md)")

    p_parse = sub.add_parser("parse", help="parse a file")
    p_parse.add_argument("file")
    add_common(p_parse)
    p_parse.add_argument("--limit", type=int, default=20,
                         help="max rows to print")
    p_parse.add_argument("--summary", action="store_true",
                         help="print statistics instead of rows")
    p_parse.add_argument("--infer-types", action="store_true")
    p_parse.add_argument("--output", metavar="OUT",
                         help="write serialised columnar output to OUT")
    p_parse.add_argument("--output-format",
                         choices=("auto", "rprw", "feather"),
                         default="auto",
                         help="serialisation format for --output: the "
                              "compact RPRW stream or the Feather-style "
                              "framed file (auto = by .feather extension)")
    p_parse.add_argument("--timings", action="store_true",
                         help="print the per-stage StepTimer breakdown")
    p_parse.add_argument("--trace", metavar="OUT.json",
                         help="write a Chrome trace_event timeline "
                              "(Perfetto / chrome://tracing)")
    p_parse.add_argument("--metrics", action="store_true",
                         help="print the counter/gauge/histogram report")
    p_parse.set_defaults(func=cmd_parse)

    p_infer = sub.add_parser("infer", help="infer column types")
    p_infer.add_argument("file")
    add_common(p_infer)
    p_infer.set_defaults(func=cmd_infer)

    p_sniff = sub.add_parser("sniff", help="guess the dialect")
    p_sniff.add_argument("file")
    p_sniff.set_defaults(func=cmd_sniff)

    p_sim = sub.add_parser("simulate",
                           help="simulated GPU timings (cost model)")
    p_sim.add_argument("--dataset", choices=("yelp", "taxi"),
                       default="yelp")
    p_sim.add_argument("--size-mb", type=int, default=512)
    p_sim.add_argument("--chunk", type=int, default=31)
    p_sim.add_argument("--partition-mb", type=int, default=128)
    p_sim.add_argument("--trace", metavar="OUT.json",
                       help="write the simulated schedule as a Chrome "
                            "trace_event timeline (one track per "
                            "resource)")
    p_sim.add_argument("--metrics", action="store_true",
                       help="print schedule busy-time/overlap gauges")
    p_sim.set_defaults(func=cmd_simulate)

    p_serve = sub.add_parser(
        "serve", help="run the multi-tenant ingest service")
    add_common(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7654,
                         help="listen port (0 = pick an ephemeral port, "
                              "printed at startup)")
    p_serve.add_argument("--dispatchers", type=_positive_int, default=2,
                         metavar="N",
                         help="dispatcher threads pulling from the "
                              "admission queue")
    p_serve.add_argument("--queue-capacity", type=_positive_int,
                         default=64, metavar="N",
                         help="admission queue bound; a full queue "
                              "rejects with a retry-after hint")
    p_serve.add_argument("--max-request-mb", type=_positive_int,
                         default=64, metavar="MB",
                         help="largest request body accepted")
    p_serve.add_argument("--request-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="default per-request deadline "
                              "(default: none)")
    p_serve.set_defaults(func=cmd_serve)

    def add_remote(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=7654)
        p.add_argument("--full", action="store_true",
                       help="also print the full service status report")

    p_batches = sub.add_parser(
        "batches", help="recent request history of a serve instance")
    add_remote(p_batches)
    p_batches.add_argument("--limit", type=_positive_int, default=20,
                           help="batches to show (newest first)")
    p_batches.set_defaults(func=cmd_batches)

    p_health = sub.add_parser(
        "checkhealth", help="health flags of a serve instance")
    add_remote(p_health)
    p_health.set_defaults(func=cmd_checkhealth)

    p_lint = sub.add_parser(
        "lint", help="run the parlint static-analysis checkers")
    p_lint.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    p_lint.add_argument("--select", action="append", default=None,
                        metavar="CODES",
                        help="only report codes matching these comma-"
                             "separated prefixes (e.g. PPR6,PPR401)")
    p_lint.add_argument("--ignore", action="append", default=None,
                        metavar="CODES",
                        help="drop codes matching these comma-separated "
                             "prefixes")
    p_lint.add_argument("--format", choices=("text", "json", "github"),
                        default="text")
    p_lint.add_argument("--list-codes", action="store_true",
                        help="list all checkers and diagnostic codes")
    p_lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
