"""A working streaming parser: partitioned parsing with record carry-over.

The functional counterpart of the pipeline simulator: feed partitions of
raw bytes in order; each partition is parsed together with the previous
partition's incomplete trailing record (the *carry-over* of §4.4), and the
new incomplete tail is held back for the next partition.  The concatenated
result is bit-identical to parsing the whole input at once (tested for
arbitrary partition sizes).

The carry-over split point must be a *true* record boundary — locating it
requires the parsing context, so the implementation runs the stage
pipeline's phases 1+2 (``chunk``/``stv``/``scan``/``tag``) on the
partition through the configured executor (exactly what the GPU
implementation's tags provide at copy time).  Both the boundary search and
the per-partition parses therefore honour a sharded executor.
"""

from __future__ import annotations

import numpy as np

from repro.columnar.table import Table, concat_tables
from repro.core.options import ParseOptions
from repro.core.parser import ParPaRawParser
from repro.core.stages import PipelineContext, RawInput, TaggedInput
from repro.errors import StreamingError
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.utils.timing import StepTimer

__all__ = ["StreamingParser", "DEFAULT_MAX_CARRY_BYTES"]

#: Default ceiling for the §4.4 carry-over.  An unterminated quoted field
#: makes every subsequent partition extend the carry instead of flushing
#: it — each ``feed`` then re-tags the whole carry from byte 0 (quadratic
#: work) and the buffer grows until memory runs out.  The default is
#: generous (far larger than any sane record); long-running services set
#: a tighter per-tenant bound.
DEFAULT_MAX_CARRY_BYTES = 256 * 1024 * 1024


class StreamingParser:
    """Incremental parser over a stream of byte partitions.

    Usage::

        stream = StreamingParser(options)
        for partition in partitions:
            stream.feed(partition)
        table = stream.finish()

    A schema is required (or a fixed column count via
    ``options.schema``/``Schema.all_strings``): the output schema must not
    depend on data that has not arrived yet.

    ``executor`` selects the execution backend for both the record-boundary
    search and the per-partition parses (default: serial);
    ``tracer``/``metrics`` attach :mod:`repro.obs` sinks — every partition
    adds one ``partition:<i>`` span enclosing its boundary search and
    parse, on the same timeline as the per-stage spans underneath.

    ``max_carry_bytes`` bounds the carry-over: when no record boundary has
    been seen for that many bytes (the signature of an unterminated quoted
    field) :meth:`feed` raises :class:`~repro.errors.StreamingError` with
    byte-offset diagnostics instead of growing — and re-tagging — the
    carry without limit.  ``None`` disables the bound.

    ``planner`` attaches a :class:`repro.plan.Planner`: with
    ``options.plan == "auto"`` every partition is re-planned against the
    calibration the previous partitions' measured stage timings built up
    (online adaptation); the boundary search itself always runs with the
    configured knobs, so partition splits are plan-independent.

    When the parser creates its own default executor (``executor=None``)
    it owns it: :meth:`close` releases it, and :meth:`parse_file` closes
    it on every path.  An explicitly passed executor stays caller-owned.
    """

    def __init__(self, options: ParseOptions | None = None,
                 executor=None, tracer: Tracer = NULL_TRACER,
                 metrics: MetricsRegistry = NULL_METRICS,
                 max_carry_bytes: int | None = DEFAULT_MAX_CARRY_BYTES,
                 planner=None):
        self.options = options if options is not None else ParseOptions()
        if self.options.schema is None:
            raise StreamingError(
                "streaming requires an explicit schema (column count and "
                "types cannot depend on unseen partitions)")
        if self.options.skip_rows or self.options.skip_records:
            raise StreamingError(
                "row/record skipping is defined on whole inputs; apply it "
                "before streaming")
        if max_carry_bytes is not None and max_carry_bytes <= 0:
            raise StreamingError("max_carry_bytes must be positive or None")
        self._parser = ParPaRawParser(self.options, executor=executor,
                                      tracer=tracer, metrics=metrics,
                                      planner=planner)
        self.planner = self._parser.planner
        self._executor = self._parser.executor
        self._owns_executor = executor is None
        self._dfa = self.options.resolved_dfa()
        self.tracer = tracer
        self.metrics = metrics
        self.max_carry_bytes = max_carry_bytes
        self._carry = b""
        self._tables: list[Table] = []
        self._finished = False
        #: Carry-over sizes per partition (exposed for tests/benchmarks).
        self.carry_sizes: list[int] = []
        #: Records parsed so far.
        self.records_parsed = 0
        #: Total bytes consumed by feed() so far (diagnostics).
        self.bytes_fed = 0
        self._partitions_fed = 0

    # -- streaming ---------------------------------------------------------

    def feed(self, partition: bytes) -> int:
        """Consume one partition; returns records completed by it."""
        if self._finished:
            raise StreamingError("cannot feed after finish()")
        index = self._partitions_fed
        self._partitions_fed += 1
        if not self.tracer.enabled:
            return self._feed(partition)
        with self.tracer.span(f"partition:{index}",
                              partition_bytes=len(partition)):
            return self._feed(partition)

    def _feed(self, partition: bytes) -> int:
        data = self._carry + bytes(partition)
        self.bytes_fed += len(partition)
        if not data:
            return 0
        split = self._last_record_boundary(data)
        complete, self._carry = data[:split], data[split:]
        self.carry_sizes.append(len(self._carry))
        if self.metrics.enabled:
            self.metrics.count("stream.partitions")
            self.metrics.observe("stream.carry.bytes", len(self._carry))
        self._check_carry_bound()
        if not complete:
            return 0
        result = self._parser.parse(complete)
        self._tables.append(result.table)
        self.records_parsed += result.num_rows
        return result.num_rows

    def _check_carry_bound(self) -> None:
        if self.max_carry_bytes is None \
                or len(self._carry) <= self.max_carry_bytes:
            return
        carry = len(self._carry)
        start = self.bytes_fed - carry
        raise StreamingError(
            f"carry-over grew to {carry} bytes without a record boundary "
            f"(max_carry_bytes={self.max_carry_bytes}); no record ends in "
            f"stream bytes [{start}, {self.bytes_fed}) — typically an "
            f"unterminated quoted field opened at or after byte {start}",
            byte_offset=start, carry_bytes=carry)

    @classmethod
    def parse_file(cls, path, options: ParseOptions,
                   partition_bytes: int = 8 * 1024 * 1024,
                   executor=None) -> Table:
        """Parse a file from disk partition by partition.

        Reads ``partition_bytes`` at a time — the whole file is never
        resident — and returns the combined table.  This is the host-side
        analogue of the paper's streaming ingestion (§4.4): each partition
        would be what gets DMA'd to the device.
        """
        if partition_bytes <= 0:
            raise StreamingError("partition_bytes must be positive")
        stream = cls(options, executor=executor)
        try:
            with open(path, "rb") as handle:
                while True:
                    partition = handle.read(partition_bytes)
                    if not partition:
                        break
                    stream.feed(partition)
            return stream.finish()
        finally:
            # The stream owns its executor only when none was passed in;
            # close() is a no-op for caller-owned executors.
            stream.close()

    def finish(self) -> Table:
        """Flush the final carry-over and return the combined table.

        The stream is marked finished only once the flush succeeds: a
        :class:`~repro.errors.ParseError` while parsing the final carry
        leaves the carry (and the stream) intact, so the caller can
        retry ``finish()`` — or feed more bytes — instead of losing the
        tail of the stream.
        """
        if self._finished:
            raise StreamingError("finish() called twice")
        if self._carry:
            result = self._parser.parse(self._carry)
            self._tables.append(result.table)
            self.records_parsed += result.num_rows
            self._carry = b""
        self._finished = True
        if not self._tables:
            empty = self._parser.parse(b"")
            return empty.table
        return concat_tables(self._tables)

    def close(self) -> None:
        """Release the executor if this stream created it; idempotent.

        Caller-provided executors are never touched — the stream only
        owns what it implicitly built (the ``executor=None`` default).
        """
        if self._owns_executor:
            self._executor.close()

    # -- internals ------------------------------------------------------------

    def _last_record_boundary(self, data: bytes) -> int:
        """Offset just past the last *true* record delimiter.

        Runs the pipeline up to and including the ``tag`` stage — the same
        machinery the device uses — so a record delimiter inside an
        enclosed field is never mistaken for a boundary.
        """
        raw = np.frombuffer(data, dtype=np.uint8)
        ctx = PipelineContext(options=self.options, dfa=self._dfa,
                              timer=StepTimer(), tracer=self.tracer,
                              metrics=self.metrics)
        payload = RawInput(raw=raw, input_bytes=int(raw.size))
        if self.tracer.enabled:
            with self.tracer.span("boundary", bytes=int(raw.size)):
                tagged: TaggedInput = self._executor.execute(ctx, payload,
                                                             until="tag")
        else:
            tagged = self._executor.execute(ctx, payload, until="tag")
        boundaries = np.flatnonzero(tagged.tags.record_delim)
        if boundaries.size == 0:
            return 0
        return int(boundaries[-1]) + 1
