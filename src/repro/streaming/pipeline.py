"""Event-driven simulation of the streaming pipeline (Figure 7).

Resources: the host-to-device PCIe channel, the device-to-host PCIe
channel (independent — full duplex), and the GPU (serial executor of parse
and carry-over-copy steps).  Buffers: the double buffer of
:mod:`repro.streaming.buffers`, with hazard checking.

Per partition ``i`` on buffer ``b = i % 2``:

* ``transfer(i)`` — HtD channel; writes ``input[b]``; must wait until the
  readers of ``input[b]`` (the parse and carry-copy of partition ``i-2``)
  are done — the corruption hazard §4.4 calls out.
* ``parse(i)`` — GPU; reads ``input[b]`` + ``carry[b]``; writes
  ``data[b]`` (so it also waits for ``return(i-2)``).
* ``copy(i)`` — GPU; reads the tail of ``input[b]``; writes
  ``carry[1-b]`` for the next partition.  This simulator orders it after
  ``parse(i)`` (the parse's tags locate the true record boundary), which
  Figure 7's dependency edges permit.
* ``return(i)`` — DtH channel; reads ``data[b]``.

The schedule's makespan is the end-to-end duration of Figures 12/13; the
per-stage records let tests assert the hazards and the overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StreamingError
from repro.gpusim.cost_model import PipelineCostModel, WorkloadStats
from repro.gpusim.device import DeviceSpec, TITAN_X_PASCAL
from repro.obs.export import chrome_trace
from repro.obs.trace import Span
from repro.streaming.buffers import DoubleBuffer
from repro.streaming.pcie import PcieLink

__all__ = ["StageRecord", "PipelineSchedule", "StreamingPipeline",
           "RESOURCES", "RESOURCE_OF"]

#: The three hardware resources of Figure 7.
RESOURCES = ("HtD", "GPU", "DtH")

#: Which resource each pipeline step occupies.  ``copy`` shares the GPU
#: with ``parse`` — both are serial on the device, so GPU busy time is the
#: sum of the two.
RESOURCE_OF = {"transfer": "HtD", "parse": "GPU", "copy": "GPU",
               "return": "DtH"}


@dataclass(frozen=True)
class StageRecord:
    """One scheduled pipeline step."""

    stage: str
    partition: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class PipelineSchedule:
    """The full schedule and its summary statistics."""

    records: list[StageRecord] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return max((r.end for r in self.records), default=0.0)

    def stage_records(self, stage: str) -> list[StageRecord]:
        return [r for r in self.records if r.stage == stage]

    def busy_time(self, stage: str) -> float:
        return sum(r.duration for r in self.stage_records(stage))

    def resource_busy_time(self, resource: str) -> float:
        """Total busy time of one resource (``HtD``/``GPU``/``DtH``).

        Aggregates every step occupying the resource: the GPU runs both
        ``parse`` and the carry-over ``copy``, so its busy time is their
        sum — counting ``parse`` alone undercounts the GPU whenever the
        schedule is copy-heavy.
        """
        return sum(r.duration for r in self.records
                   if RESOURCE_OF[r.stage] == resource)

    def overlap_efficiency(self) -> float:
        """Busy time of the bottleneck resource / makespan (1.0 = hidden).

        Close to 1.0 means the pipeline fully hides the other resources
        behind the bottleneck — the paper's "maxes out the full-duplex
        capabilities of the PCIe bus while simultaneously parsing" claim.
        """
        makespan = self.makespan
        if makespan <= 0:
            return 1.0
        busiest = max(self.resource_busy_time(r) for r in RESOURCES)
        return busiest / makespan

    def bottleneck(self) -> str:
        """The resource (``HtD``/``GPU``/``DtH``) with the most busy time."""
        return max(RESOURCES, key=self.resource_busy_time)

    def fill_drain_seconds(self) -> float:
        """Un-overlapped pipeline head + tail.

        The first partition's transfer has nothing to overlap with, and
        the last partition's return happens after all parsing — the two
        terms that grow with the partition size and bend Figure 12's
        curve back up on the right.
        """
        transfers = self.stage_records("transfer")
        returns = self.stage_records("return")
        if not transfers or not returns:
            return 0.0
        first_transfer = min(transfers, key=lambda r: r.start)
        last_return = max(returns, key=lambda r: r.end)
        head = first_transfer.duration
        parses = self.stage_records("parse")
        last_parse_end = max(r.end for r in parses) if parses else 0.0
        tail = max(0.0, last_return.end - max(last_parse_end,
                                              last_return.start))
        return head + tail

    def render_gantt(self, width: int = 72,
                     max_partitions: int | None = 8) -> str:
        """ASCII Gantt chart of the schedule (one row per resource).

        Stage letters: ``T`` transfer (HtD), ``P`` parse, ``c`` carry-over
        copy, ``R`` return (DtH); alternating case marks partition parity
        so the double buffering is visible.  Any ``width`` ≥ 1 renders;
        tiny widths just collapse the bars.
        """
        makespan = self.makespan
        if makespan <= 0:
            return "(empty schedule)"
        width = max(1, width)
        rows = {resource: [" "] * width for resource in RESOURCES}
        letters = {"transfer": "Tt", "parse": "Pp", "copy": "cc",
                   "return": "Rr"}
        for record in self.records:
            if max_partitions is not None \
                    and record.partition >= max_partitions:
                continue
            row = rows[RESOURCE_OF[record.stage]]
            lo = int(record.start / makespan * (width - 1))
            lo = min(width - 1, max(0, lo))
            hi = max(lo + 1, int(record.end / makespan * (width - 1)))
            letter = letters[record.stage][record.partition % 2]
            for i in range(lo, min(hi, width)):
                row[i] = letter
        lines = [f"{name:<4}" + "".join(cells)
                 for name, cells in rows.items()]
        lines.append(f"      0s {'.' * max(0, width - 14)} "
                     f"{makespan:.3f}s")
        return "\n".join(lines)

    # -- trace export --------------------------------------------------------

    def spans(self) -> list[Span]:
        """The schedule as trace spans, one timeline track per resource.

        Simulated timestamps are already seconds from zero, so they drop
        straight into the span model; the resource name rides in ``tid``
        and becomes the track label in the exported trace.
        """
        return [Span(name=f"{r.stage}:{r.partition}",
                     start=r.start, end=r.end,
                     pid=0, tid=RESOURCE_OF[r.stage],
                     attrs={"stage": r.stage, "partition": r.partition})
                for r in self.records]

    def to_chrome_trace(self) -> dict:
        """Chrome ``trace_event`` document of the simulated schedule.

        The same format measured parses export, so a simulated Figure 13
        schedule and a real run open side by side in Perfetto.
        """
        return chrome_trace(self.spans())


class StreamingPipeline:
    """Simulates end-to-end streaming parsing of a large input."""

    def __init__(self, device: DeviceSpec = TITAN_X_PASCAL,
                 cost_model: PipelineCostModel | None = None,
                 pcie: PcieLink | None = None,
                 output_ratio: float = 1.0,
                 carry_over_bytes: int = 1024):
        self.device = device
        self.cost_model = cost_model if cost_model is not None \
            else PipelineCostModel(device)
        self.pcie = pcie if pcie is not None \
            else PcieLink(bandwidth=device.pcie_bandwidth,
                          latency=device.pcie_latency)
        if output_ratio <= 0:
            raise StreamingError("output_ratio must be positive")
        self.output_ratio = output_ratio
        self.carry_over_bytes = carry_over_bytes

    # -- simulation ------------------------------------------------------------

    def simulate(self, total_bytes: int, partition_bytes: int,
                 stats_factory=WorkloadStats.yelp_like) -> PipelineSchedule:
        """Schedule all partitions; return the full timing record.

        Parameters
        ----------
        total_bytes:
            Input size.
        partition_bytes:
            Partition size (the Figure 12 x-axis).
        stats_factory:
            ``bytes -> WorkloadStats`` describing the dataset shape (use
            :meth:`WorkloadStats.yelp_like` / :meth:`~WorkloadStats.taxi_like`).
        """
        if total_bytes <= 0 or partition_bytes <= 0:
            raise StreamingError("sizes must be positive")
        # The double buffer must fit on the device: two input regions,
        # two data regions, carry-overs and the pipeline's auxiliary
        # memory (Figure 7's allocation diagram).
        footprint = 2 * partition_bytes * (1 + self.output_ratio) \
            + 2 * self.carry_over_bytes
        if footprint > self.device.memory_bytes:
            raise StreamingError(
                f"partition size {partition_bytes / 2 ** 20:.0f} MiB needs "
                f"{footprint / 2 ** 30:.1f} GiB of device memory for the "
                f"double buffer; {self.device.name} has "
                f"{self.device.memory_bytes / 2 ** 30:.0f} GiB")
        num_partitions = -(-total_bytes // partition_bytes)
        sizes = [min(partition_bytes,
                     total_bytes - i * partition_bytes)
                 for i in range(num_partitions)]

        buffers = DoubleBuffer()
        schedule = PipelineSchedule()
        htd_free = 0.0
        gpu_free = 0.0
        dth_free = 0.0
        transfer_end = [0.0] * num_partitions
        parse_end = [0.0] * num_partitions
        copy_end = [0.0] * num_partitions
        return_end = [0.0] * num_partitions

        copy_duration = (self.carry_over_bytes
                         / self.device.memory_bandwidth
                         + self.device.kernel_launch_overhead)

        for i, size in enumerate(sizes):
            side = i % 2
            other = 1 - side

            # transfer(i): HtD serial; input[side] must be reader-free.
            start = max(htd_free, buffers.earliest_write(side, "input"))
            end = start + self.pcie.transfer_seconds(size)
            buffers.write(side, "input", start, end)
            schedule.records.append(StageRecord("transfer", i, start, end))
            htd_free = end
            transfer_end[i] = end

            # parse(i): GPU serial; needs its input + carry written, and
            # data[side] free of the return reader.
            parse_seconds = self.cost_model.total_seconds(
                stats_factory(size))
            start = max(gpu_free, transfer_end[i],
                        buffers.earliest_read(side, "carry"),
                        buffers.earliest_write(side, "data"))
            end = start + parse_seconds
            buffers.read(side, "input", start, end)
            buffers.read(side, "carry", start, end)
            buffers.write(side, "data", start, end)
            schedule.records.append(StageRecord("parse", i, start, end))
            gpu_free = end
            parse_end[i] = end

            # copy(i): GPU serial; tail of input[side] -> carry[other].
            if i + 1 < num_partitions:
                start = max(gpu_free,
                            buffers.earliest_write(other, "carry"))
                end = start + copy_duration
                buffers.read(side, "input", start, end)
                buffers.write(other, "carry", start, end)
                schedule.records.append(StageRecord("copy", i, start, end))
                gpu_free = end
                copy_end[i] = end

            # return(i): DtH serial; reads data[side].
            start = max(dth_free, parse_end[i])
            end = start + self.pcie.transfer_seconds(
                size * self.output_ratio)
            buffers.read(side, "data", start, end)
            schedule.records.append(StageRecord("return", i, start, end))
            dth_free = end
            return_end[i] = end

        return schedule

    def end_to_end_seconds(self, total_bytes: int, partition_bytes: int,
                           stats_factory=WorkloadStats.yelp_like) -> float:
        """Makespan of the streamed parse (the Figure 12 y-axis)."""
        return self.simulate(total_bytes, partition_bytes,
                             stats_factory).makespan

    def non_streaming_seconds(self, total_bytes: int,
                              stats_factory=WorkloadStats.yelp_like
                              ) -> float:
        """Transfer-everything, parse, return-everything (no overlap)."""
        parse = self.cost_model.total_seconds(stats_factory(total_bytes))
        return (self.pcie.transfer_seconds(total_bytes) + parse
                + self.pcie.transfer_seconds(total_bytes
                                             * self.output_ratio))
