"""Double-buffer and carry-over bookkeeping (paper §4.4, Figure 7).

The streaming design allocates two buffers (A and B) on the device, each
with an input region, a prepended carry-over region, and a parsed-data
region.  While buffer A's input is being parsed, buffer B's input receives
the next partition; the incomplete record at the end of A's input is
copied into B's carry-over region so partition boundaries never split
records.

:class:`DoubleBuffer` tracks which logical resource each pipeline step
uses, and *verifies* the hazard the paper calls out: "the transfer of the
third partition to input buffer A does not take place before the
carry-over has been copied, as the carry-over would otherwise get
corrupted".  The pipeline simulator drives it; violations raise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StreamingError

__all__ = ["CarryOver", "DoubleBuffer"]


@dataclass
class CarryOver:
    """The last, incomplete record at the end of one partition's input."""

    partition: int
    data: bytes

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class DoubleBuffer:
    """Usage tracking for the two device buffers.

    Each buffer side has three hazard-tracked regions: ``input`` (raw
    partition bytes), ``carry`` (prepended carry-over) and ``data``
    (parsed output).  The simulator registers readers/writers with
    logical timestamps; a write overlapping an outstanding read raises.
    """

    #: buffer side -> region -> time the last reader finishes.
    read_free_at: dict[tuple[int, str], float] = field(default_factory=dict)
    #: buffer side -> region -> time the last writer finishes.
    write_free_at: dict[tuple[int, str], float] = field(default_factory=dict)

    _REGIONS = ("input", "carry", "data")

    def side(self, partition: int) -> int:
        """Which buffer (0 = A, 1 = B) a partition uses."""
        return partition % 2

    def _check(self, side: int, region: str) -> None:
        if side not in (0, 1) or region not in self._REGIONS:
            raise StreamingError(f"unknown buffer region {side}/{region}")

    def write(self, side: int, region: str, start: float,
              end: float) -> None:
        """Register a write to a region over [start, end)."""
        self._check(side, region)
        key = (side, region)
        if start < self.read_free_at.get(key, 0.0) - 1e-12:
            raise StreamingError(
                f"write to buffer {'AB'[side]} region {region!r} at "
                f"t={start:.6f}s would corrupt data still being read "
                f"(readers finish at {self.read_free_at[key]:.6f}s)")
        self.write_free_at[key] = max(self.write_free_at.get(key, 0.0), end)

    def read(self, side: int, region: str, start: float,
             end: float) -> None:
        """Register a read of a region over [start, end)."""
        self._check(side, region)
        key = (side, region)
        if start < self.write_free_at.get(key, 0.0) - 1e-12:
            raise StreamingError(
                f"read of buffer {'AB'[side]} region {region!r} at "
                f"t={start:.6f}s precedes its write completing at "
                f"{self.write_free_at[key]:.6f}s")
        self.read_free_at[key] = max(self.read_free_at.get(key, 0.0), end)

    def earliest_write(self, side: int, region: str) -> float:
        """Earliest time a new write to the region may begin."""
        self._check(side, region)
        return self.read_free_at.get((side, region), 0.0)

    def earliest_read(self, side: int, region: str) -> float:
        """Earliest time a new read of the region may begin."""
        self._check(side, region)
        return self.write_free_at.get((side, region), 0.0)
