"""End-to-end streaming (paper §4.4, Figure 7).

Inputs that do not reside on the GPU (or exceed its memory) are split into
partitions; transfer-to-device, parse, and transfer-back overlap across
partitions, exploiting the PCIe bus's full-duplex capability and hiding
transfer latency.

Two halves:

* a **working streaming parser**
  (:class:`~repro.streaming.stream_parser.StreamingParser`) that actually
  parses arbitrary byte streams partition by partition, carrying the last
  incomplete record over to the next partition — output is bit-identical
  to a batch parse (tested);
* a **pipeline simulator** (:class:`~repro.streaming.pipeline.StreamingPipeline`)
  that schedules the Figure 7 dependency DAG (double buffers, carry-over
  copies, serial HtD/DtH channels, serial GPU) over the
  :mod:`repro.gpusim` cost model to produce the end-to-end timings of
  Figures 12 and 13.
"""

from repro.streaming.pcie import PcieLink
from repro.streaming.buffers import DoubleBuffer, CarryOver
from repro.streaming.pipeline import StreamingPipeline, PipelineSchedule
from repro.streaming.stream_parser import StreamingParser

__all__ = [
    "PcieLink",
    "DoubleBuffer",
    "CarryOver",
    "StreamingPipeline",
    "PipelineSchedule",
    "StreamingParser",
]
