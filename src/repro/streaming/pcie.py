"""PCIe bus model (paper §4.4).

"The PCIe bus allows for full-duplex communication, enabling simultaneous
data transfers in either direction at peak bandwidth" — the model is
therefore two independent serial channels (host-to-device and
device-to-host), each with a fixed per-transfer latency plus a
bandwidth-proportional term.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StreamingError

__all__ = ["PcieLink"]


@dataclass(frozen=True)
class PcieLink:
    """One direction pair of a PCIe link.

    Attributes
    ----------
    bandwidth:
        Effective bytes/second per direction (PCIe 3.0 x16 ≈ 11.8 GB/s).
    latency:
        Fixed seconds per transfer (DMA setup, doorbell).
    """

    bandwidth: float = 11.8e9
    latency: float = 10e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise StreamingError("bandwidth must be positive")
        if self.latency < 0:
            raise StreamingError("latency must be non-negative")

    def transfer_seconds(self, num_bytes: float) -> float:
        """Duration of one transfer in one direction."""
        if num_bytes < 0:
            raise StreamingError("num_bytes must be non-negative")
        return self.latency + num_bytes / self.bandwidth

    def min_transfer_time(self, total_bytes: float) -> float:
        """Lower bound: streaming ``total_bytes`` through one direction.

        The paper's sanity check: transferring the 4.8 GB yelp input alone
        takes ≈0.41 s, so ParPaRaw's 0.44 s end-to-end means the bus is
        effectively saturated (§6).
        """
        return self.transfer_seconds(total_bytes)
