"""The parlint driver: file discovery, checker dispatch, output.

``lint_paths`` is the library entry point; ``main`` is the CLI behind
``parparaw lint`` (and ``python -m repro lint``).  Exit status: 0 when no
diagnostics survive waivers, 1 when violations are reported, 2 on usage
errors (unreadable path, syntax error in an analysed file).
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.astutils import statement_spans
from repro.analysis.diagnostics import (
    Diagnostic,
    render_github,
    render_json,
    render_text,
)
from repro.analysis.pragmas import FilePragmas, parse_pragmas
from repro.analysis.registry import Checker, all_checkers, all_codes

__all__ = ["ModuleInfo", "LintResult", "filter_diagnostics", "load_module",
           "lint_paths", "main"]


@dataclass
class ModuleInfo:
    """Everything the checkers may inspect about one source file."""

    #: Path as given (kept relative when the input was relative).
    path: Path
    #: Raw source text.
    source: str
    #: Parsed syntax tree.
    tree: ast.Module
    #: Dotted module name (``repro.core.stages``), or ``None`` when the
    #: file lies outside a recognisable package root.
    module: str | None
    #: Parsed pragma state (waivers and markers).
    pragmas: FilePragmas

    @property
    def package(self) -> str | None:
        """The top-level subpackage, e.g. ``repro.core`` (or ``repro``)."""
        if self.module is None:
            return None
        parts = self.module.split(".")
        return ".".join(parts[:2]) if len(parts) >= 2 else parts[0]


def _module_name_from_path(path: Path) -> str | None:
    """Infer the dotted module name from the file's location.

    Recognises ``.../src/<pkg>/...`` layouts and, failing that, any path
    containing a ``repro`` directory component.
    """
    parts = list(path.resolve().parts)
    anchor = None
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src")
        dotted = parts[anchor + 1:]
    elif "repro" in parts:
        anchor = parts.index("repro")
        dotted = parts[anchor:]
    else:
        return None
    if not dotted:
        return None
    dotted = list(dotted)
    dotted[-1] = dotted[-1].removesuffix(".py")
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted) if dotted else None


def load_module(path: Path) -> ModuleInfo:
    """Read, parse and pragma-scan one file (raises on syntax errors)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    pragmas = parse_pragmas(source)
    # A waiver on any physical line of a multi-line simple statement
    # covers the whole statement (the diagnostic may be anchored to a
    # different line of it than the pragma).
    pragmas.attach_statement_spans(statement_spans(tree))
    module = pragmas.module_override or _module_name_from_path(path)
    return ModuleInfo(path=path, source=source, tree=tree,
                      module=module, pragmas=pragmas)


def iter_python_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(
                p for p in entry.rglob("*.py")
                if "__pycache__" not in p.parts)
        elif entry.suffix == ".py":
            yield entry
        else:
            raise FileNotFoundError(f"not a Python file or directory: "
                                    f"{entry}")


@dataclass
class LintResult:
    """Outcome of one lint run."""

    diagnostics: list[Diagnostic]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.diagnostics


def lint_file(module: ModuleInfo,
              checkers: Sequence[Checker]) -> list[Diagnostic]:
    """Run every checker over one module, applying waivers."""
    if module.pragmas.skip_file:
        return []
    findings: list[Diagnostic] = []
    for checker in checkers:
        for diag in checker.check(module):
            if not module.pragmas.is_waived(diag.code, diag.line):
                findings.append(diag)
    return findings


def lint_paths(paths: Sequence[Path | str],
               checkers: Sequence[Checker] | None = None) -> LintResult:
    """Lint files/directories; returns all surviving diagnostics."""
    if checkers is None:
        checkers = all_checkers()
    diagnostics: list[Diagnostic] = []
    count = 0
    for path in iter_python_files(paths):
        count += 1
        diagnostics.extend(lint_file(load_module(path), checkers))
    diagnostics.sort()
    return LintResult(diagnostics=diagnostics, files_checked=count)


def _split_code_list(spec: str | Iterable[str] | None) -> list[str]:
    """Normalise a ``--select``/``--ignore`` spec into code prefixes."""
    if spec is None:
        return []
    if isinstance(spec, str):
        spec = [spec]
    prefixes: list[str] = []
    for entry in spec:
        prefixes.extend(p.strip() for p in entry.split(",") if p.strip())
    return prefixes


def filter_diagnostics(diagnostics: Sequence[Diagnostic],
                       select: str | Iterable[str] | None = None,
                       ignore: str | Iterable[str] | None = None
                       ) -> list[Diagnostic]:
    """Keep diagnostics matching ``select`` and not matching ``ignore``.

    Both filters are comma-separated lists of code *prefixes*
    (``PPR6`` selects the whole dataflow tier, ``PPR601`` one code).
    An empty/absent ``select`` keeps everything.
    """
    selected = _split_code_list(select)
    ignored = _split_code_list(ignore)
    kept = []
    for diag in diagnostics:
        if selected and not any(diag.code.startswith(p) for p in selected):
            continue
        if any(diag.code.startswith(p) for p in ignored):
            continue
        kept.append(diag)
    return kept


def _list_codes() -> str:
    lines = ["parlint diagnostic codes:"]
    for code, summary in all_codes().items():
        lines.append(f"  {code}  {summary}")
    return "\n".join(lines)


def main(paths: Iterable[str], output_format: str = "text",
         list_codes: bool = False, out=None,
         select: str | Iterable[str] | None = None,
         ignore: str | Iterable[str] | None = None) -> int:
    """CLI body shared by ``parparaw lint`` (see ``repro.__main__``)."""
    out = out if out is not None else sys.stdout
    if list_codes:
        print(_list_codes(), file=out)
        return 0
    try:
        result = lint_paths(list(paths) or ["src"])
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"parlint: error: {exc}", file=sys.stderr)
        return 2
    diagnostics = filter_diagnostics(result.diagnostics, select, ignore)
    if output_format == "json":
        print(render_json(diagnostics,
                          files_checked=result.files_checked), file=out)
    elif output_format == "github":
        if diagnostics:
            print(render_github(diagnostics), file=out)
        print(f"parlint: {len(diagnostics)} finding(s) in "
              f"{result.files_checked} file(s)", file=out)
    else:
        if diagnostics:
            print(render_text(diagnostics), file=out)
        print(f"parlint: {len(diagnostics)} finding(s) in "
              f"{result.files_checked} file(s)", file=out)
    return 0 if not diagnostics else 1
