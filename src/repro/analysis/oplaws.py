"""Monoid-law verification for the pipeline's scan operators.

Every prefix-scan decomposition in ParPaRaw is licensed by exactly one
algebraic fact: the combining operator is **associative with an
identity** (paper §2).  The state-transition-vector composition (§3.1)
and the rel/abs column-offset operator (§3.2) are the two load-bearing
instances — if either law broke, the chunk-parallel (and, one level up,
the shard-parallel) context resolution would silently produce wrong
parses for *some* chunk boundary placement.

This module machine-checks the laws **exhaustively over all triples of a
small domain** rather than by random sampling.  For the STV composition
the domain — *all* functions on a 3-state set — is moreover **closed**
under the operator, so the exhaustive check is a genuine proof of the
laws on that domain, and structurally complete: composition is function
composition, which behaves identically for any state count.  For
operators over unbounded carriers (sums, offsets) no finite closed
domain exists; there the domains are chosen to exercise every control
path (sign mixes, rel/abs kind combinations, segment-flag combinations)
and the check is an exhaustive sweep of the sample's triples.

:data:`LAW_SPECS` is the registry the ``operator-laws`` lint checker
cross-references: a monoid-shaped class (defines ``combine`` and
``identity``) anywhere in the source tree must have a spec here, which
both documents its intended domain and enrols it in the law test tier
(``tests/analysis/test_operator_laws.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Callable, Sequence

from repro.scan.operators import (
    ColumnOffset,
    ColumnOffsetMonoid,
    MaxMonoid,
    MinMonoid,
    SumMonoid,
    TransitionComposeMonoid,
)
from repro.scan.segmented import SegmentedMonoid

__all__ = ["LawSpec", "LAW_SPECS", "LawViolation", "check_monoid_laws",
           "verify_all_registered"]


@dataclass(frozen=True)
class LawViolation:
    """One broken instance of a monoid law."""

    #: ``"identity-left"``, ``"identity-right"`` or ``"associativity"``.
    law: str
    #: The operands that witnessed the violation.
    operands: tuple[Any, ...]
    #: The two unequal results.
    left_result: Any
    right_result: Any

    def __str__(self) -> str:
        return (f"{self.law} violated for operands {self.operands!r}: "
                f"{self.left_result!r} != {self.right_result!r}")


@dataclass(frozen=True)
class LawSpec:
    """A registered operator: how to build it and its exhaustive domain."""

    #: Class name as it appears in source (the lint checker's key).
    class_name: str
    #: Module the class is defined in.
    module: str
    #: Builds a fresh operator instance.
    factory: Callable[[], Any]
    #: Builds the closed, exhaustively checkable domain.
    domain: Callable[[], Sequence[Any]]
    #: Why this domain proves the laws (documentation, shown in reports).
    rationale: str
    #: Whether the domain is closed under ``combine`` (and contains the
    #: identity) — when True, the exhaustive sweep is a proof of the laws
    #: restricted to the domain, not just a strong property check.
    closed: bool = False


def _stv_domain(num_states: int = 3) -> list[tuple[int, ...]]:
    """All ``num_states ** num_states`` state-transition vectors."""
    return [vec for vec in product(range(num_states), repeat=num_states)]


def _offset_domain(max_value: int = 3) -> list[ColumnOffset]:
    values = range(max_value + 1)
    return ([ColumnOffset.relative(v) for v in values]
            + [ColumnOffset.absolute(v) for v in values])


def _segmented_domain(max_value: int = 2) -> list[tuple[bool, int]]:
    return [(flag, value) for flag in (False, True)
            for value in range(max_value + 1)]


def _int_domain() -> list[int]:
    return [-3, -1, 0, 1, 2, 5]


LAW_SPECS: dict[str, LawSpec] = {spec.class_name: spec for spec in (
    LawSpec(
        class_name="TransitionComposeMonoid",
        module="repro.scan.operators",
        factory=lambda: TransitionComposeMonoid(3),
        domain=lambda: _stv_domain(3),
        rationale="all 27 functions on a 3-state set; composition is "
                  "function composition, so the argument is independent "
                  "of the state count (paper §3.1)",
        closed=True,
    ),
    LawSpec(
        class_name="ColumnOffsetMonoid",
        module="repro.scan.operators",
        factory=ColumnOffsetMonoid,
        domain=lambda: _offset_domain(3),
        rationale="every rel/abs kind with offsets 0..3; the operator "
                  "only inspects the kind and adds values, so small "
                  "offsets exercise every control path (paper §3.2)",
    ),
    LawSpec(
        class_name="SumMonoid",
        module="repro.scan.operators",
        factory=SumMonoid,
        domain=_int_domain,
        rationale="integer addition over a sign-mixed sample",
    ),
    LawSpec(
        class_name="MaxMonoid",
        module="repro.scan.operators",
        factory=MaxMonoid,
        domain=_int_domain,
        rationale="max over a sign-mixed sample (identity is the "
                  "sentinel minimum)",
    ),
    LawSpec(
        class_name="MinMonoid",
        module="repro.scan.operators",
        factory=MinMonoid,
        domain=_int_domain,
        rationale="min over a sign-mixed sample (identity is the "
                  "sentinel maximum)",
    ),
    LawSpec(
        class_name="SegmentedMonoid",
        module="repro.scan.segmented",
        factory=lambda: SegmentedMonoid(SumMonoid()),
        domain=lambda: _segmented_domain(2),
        rationale="the segmented lift over addition: every flag "
                  "combination with values 0..2 exercises both the "
                  "reset and the accumulate branch",
    ),
)}


def check_monoid_laws(monoid: Any, domain: Sequence[Any],
                      max_violations: int = 5) -> list[LawViolation]:
    """Exhaustively check identity and associativity over ``domain``.

    Returns at most ``max_violations`` violations (empty = laws hold on
    the full domain).  Cost is ``O(|domain| ** 3)`` combines — keep
    domains small and closed.
    """
    violations: list[LawViolation] = []
    identity = monoid.identity()

    for x in domain:
        if monoid.combine(identity, x) != x:
            violations.append(LawViolation(
                "identity-left", (x,), monoid.combine(identity, x), x))
        if monoid.combine(x, identity) != x:
            violations.append(LawViolation(
                "identity-right", (x,), monoid.combine(x, identity), x))
        if len(violations) >= max_violations:
            return violations[:max_violations]

    for x, y, z in product(domain, repeat=3):
        left = monoid.combine(monoid.combine(x, y), z)
        right = monoid.combine(x, monoid.combine(y, z))
        if left != right:
            violations.append(LawViolation(
                "associativity", (x, y, z), left, right))
            if len(violations) >= max_violations:
                break
    return violations[:max_violations]


def verify_all_registered() -> dict[str, list[LawViolation]]:
    """Run the laws for every registered operator.

    Returns a mapping of class name to violations; all-empty values mean
    every registered scan operator is a lawful monoid on its domain.
    """
    return {name: check_monoid_laws(spec.factory(), spec.domain())
            for name, spec in LAW_SPECS.items()}
