"""Shared AST helpers for the parlint checkers."""

from __future__ import annotations

import ast

__all__ = [
    "base_names",
    "decorator_names",
    "def_anchor_lines",
    "dotted_name",
    "stage_subclasses",
    "statement_spans",
    "dataclass_fields_by_name",
    "class_methods",
]

#: Simple (non-compound) statements: a pragma anywhere within one of
#: these applies to the whole statement when it spans several lines.
_SIMPLE_STMTS = (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Expr,
                 ast.Return, ast.Raise, ast.Assert, ast.Delete,
                 ast.Import, ast.ImportFrom, ast.Global, ast.Nonlocal)


def statement_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """``(first_line, last_line)`` of every multi-line simple statement.

    Used by the driver to let a ``# parlint: disable=…`` trailing any
    physical line of a statement (a call split over several lines, a
    parenthesised expression, …) waive diagnostics anchored anywhere in
    that statement.  Compound statements (``def``/``for``/``if``…) are
    deliberately excluded: expanding a waiver over a whole suite would
    silence far more than the author wrote it next to.
    """
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, _SIMPLE_STMTS) \
                and node.end_lineno is not None \
                and node.end_lineno > node.lineno:
            spans.append((node.lineno, node.end_lineno))
    return spans


def def_anchor_lines(func: ast.FunctionDef | ast.AsyncFunctionDef
                     ) -> set[int]:
    """Physical lines on which a def-level pragma marker may sit.

    Covers the ``def`` line, the line directly above the def *or its
    first decorator*, every decorator line, and the whole signature when
    it spans several lines — so ``# parlint: worker`` (or ``borrowed``/
    ``returns-borrowed``) keeps working when a decorator is added above
    the function or the parameter list wraps.
    """
    lines = {func.lineno, func.lineno - 1}
    if func.decorator_list:
        first = min(d.lineno for d in func.decorator_list)
        lines.add(first - 1)
        for deco in func.decorator_list:
            lines.add(deco.lineno)
            if deco.end_lineno is not None:
                lines.update(range(deco.lineno, deco.end_lineno + 1))
    if func.body:
        # Multi-line signatures: def line .. line before the first body
        # statement (covers the closing-paren line).
        lines.update(range(func.lineno, func.body[0].lineno))
    return lines


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def base_names(cls: ast.ClassDef) -> list[str]:
    """Base-class names of a ClassDef (last attribute segment for dotted
    bases, subscript values unwrapped: ``Protocol[T]`` -> ``Protocol``)."""
    names: list[str] = []
    for base in cls.bases:
        if isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def decorator_names(node: ast.ClassDef | ast.FunctionDef
                    | ast.AsyncFunctionDef) -> list[str]:
    names: list[str] = []
    for deco in node.decorator_list:
        if isinstance(deco, ast.Call):
            deco = deco.func
        name = dotted_name(deco)
        if name is not None:
            names.append(name.rsplit(".", 1)[-1])
    return names


def class_methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    """Directly defined (non-async) methods of a class, by name."""
    return {stmt.name: stmt for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef)}


def stage_subclasses(tree: ast.Module) -> list[ast.ClassDef]:
    """Classes deriving (transitively, within the file) from ``Stage``.

    The base may be defined in the file or imported; resolution is by
    name, which is exactly right for both the real pipeline module and
    the self-test corpus.  The class literally named ``Stage`` itself is
    not a subclass.
    """
    classes = {node.name: node for node in tree.body
               if isinstance(node, ast.ClassDef)}
    cache: dict[str, bool] = {}

    def derives(name: str, seen: frozenset[str]) -> bool:
        if name == "Stage":
            return True
        if name in cache:
            return cache[name]
        node = classes.get(name)
        result = False
        if node is not None and name not in seen:
            result = any(derives(base, seen | {name})
                         for base in base_names(node))
        cache[name] = result
        return result

    return [node for name, node in classes.items()
            if name != "Stage" and any(derives(base, frozenset({name}))
                                       for base in base_names(node))]


def dataclass_fields_by_name(tree: ast.Module) -> dict[str, set[str]]:
    """Field names of every dataclass defined in the module.

    Inherited fields are resolved through bases defined in the same
    file; bases defined elsewhere contribute nothing here (callers merge
    in the canonical payload table for those).
    """
    classes = {node.name: node for node in tree.body
               if isinstance(node, ast.ClassDef)}
    result: dict[str, set[str]] = {}

    def own_fields(node: ast.ClassDef) -> set[str]:
        fields: set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                annotation = dotted_name(stmt.annotation) \
                    if not isinstance(stmt.annotation, ast.Subscript) \
                    else dotted_name(stmt.annotation.value)
                if annotation is not None \
                        and annotation.rsplit(".", 1)[-1] == "ClassVar":
                    continue
                fields.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        fields.add(target.id)
        return fields

    def resolve(name: str, seen: frozenset[str]) -> set[str]:
        node = classes.get(name)
        if node is None or name in seen:
            return set()
        fields = own_fields(node)
        for base in base_names(node):
            fields |= resolve(base, seen | {name})
        return fields

    for name, node in classes.items():
        if "dataclass" in decorator_names(node):
            result[name] = resolve(name, frozenset())
    return result
