"""parlint — AST-based static analysis for the ParPaRaw repro.

The pipeline's correctness rests on invariants the type system cannot
see: stages must honour their declared payload contracts, scan operators
must be lawful monoids (paper §2), worker tasks must be pure and
picklable, hot-path modules must stay vectorised, the package layers
must stay a DAG, and no zero-copy buffer view may be mutated or escape
its frame (the ownership dataflow tier,
:mod:`repro.analysis.dataflow`).  This package enforces all of them
statically, with an exhaustive law-check tier for the operators.

Entry points:

* ``parparaw lint [paths...]`` — the CLI (see :mod:`repro.__main__`).
* :func:`repro.analysis.lint_paths` — programmatic API.
* :func:`repro.analysis.oplaws.verify_all_registered` — the operator
  law proofs, also run by ``tests/analysis/test_operator_laws.py``.

Waiver syntax (see ``docs/PARLINT.md``): ``# parlint: disable=CODE`` on
the offending line, ``# parlint: disable-file=CODE`` or
``# parlint: skip-file`` at module level, plus the markers
``# parlint: hot-path``, ``# parlint: worker``,
``# parlint: borrowed[=names]``, ``# parlint: returns-borrowed``,
``# parlint: owned`` and ``# parlint: module=dotted.name``.  A
``-- justification`` suffix is encouraged and ignored by the parser.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    render_github,
    render_json,
    render_text,
)
from repro.analysis.driver import (
    LintResult,
    filter_diagnostics,
    lint_paths,
    main,
)
from repro.analysis.registry import Checker, all_checkers, all_codes, register

__all__ = [
    "Checker",
    "Diagnostic",
    "LintResult",
    "all_checkers",
    "all_codes",
    "filter_diagnostics",
    "lint_paths",
    "main",
    "register",
    "render_github",
    "render_json",
    "render_text",
]
