"""Machine-checked proofs about the shipped automata and their minimiser.

Companion tier to :mod:`repro.analysis.oplaws`: where the operator-law
tier licenses the *scan decomposition*, this tier licenses the *automaton
substitution* the pipeline performs when ``ParseOptions.minimize_dfa`` is
on — every sweep runs over :func:`repro.dfa.minimize.canonicalize`'s
output instead of the raw dialect DFA, so the whole parse is only correct
if that substitution is behaviour-preserving for every automaton we ship.

The proofs quantify over :data:`repro.dfa.registry.REGISTERED_AUTOMATA`
(the ground truth for "which dialects exist") and are exhaustive, not
sampled: behavioural equivalence is decided by product-automaton
refinement over all 256 byte values from every reachable state pair,
which for a DFA is a complete decision procedure.

Per registered automaton ``d``:

* **equivalence** — ``equivalent(d, canonicalize(d).dfa)``: minimisation
  preserves the byte-level Mealy behaviour (emissions, acceptance,
  invalid-sink membership) exactly.
* **idempotence** — the canonical form is a fixed point:
  ``is_canonical(canonicalize(d).dfa)``.  Without this the kernel cache's
  behavioural fingerprint would not be stable under re-canonicalisation.
* **engine agreement** — the data-parallel refinement and Hopcroft's
  worklist algorithm compute the same partition
  (:func:`repro.dfa.minimize.same_partition`).  Two independent
  implementations of the same fixpoint cross-check each other.

Across automata:

* **distinctness** — no two registered automata are behaviourally
  equivalent: every registry entry earns its name.  (If a future dialect
  ever *is* equivalent to an existing one, the right fix is an alias in
  the registry, not two entries — the kernel cache would silently share
  tables between them anyway.)

And one *strictness ordering* witness:

* **inclusion** — RFC 4180 is strictly included in a hand-built lenient
  variant that tolerates bare quotes inside unquoted fields
  (:func:`lenient_rfc4180_dfa`): ``included(rfc4180, lenient)`` holds and
  the converse fails.  This exercises the one-sided product sweep
  (:func:`repro.dfa.minimize.included`) on a pair where equivalence is
  genuinely too strong.

``tests/analysis/test_dfa_proofs.py`` runs :func:`verify_all` in the test
tier; ``scripts/check.sh`` smokes it in CI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dfa.automaton import Dfa, Emission
from repro.dfa.builder import DfaBuilder
from repro.dfa.minimize import (
    canonicalize,
    equivalent,
    hopcroft_partition,
    included,
    is_canonical,
    parallel_partition,
    same_partition,
)
from repro.dfa.registry import registered_dfas

__all__ = ["ProofViolation", "lenient_rfc4180_dfa", "verify_automaton",
           "verify_distinctness", "verify_inclusion", "verify_all"]


@dataclass(frozen=True)
class ProofViolation:
    """One failed proof obligation."""

    #: ``"equivalence"``, ``"idempotence"``, ``"engine-agreement"``,
    #: ``"distinctness"`` or ``"inclusion"``.
    proof: str
    #: Registry name(s) of the automaton/automata involved.
    subject: str
    #: Human-readable statement of what failed.
    detail: str

    def __str__(self) -> str:
        return f"{self.proof}[{self.subject}]: {self.detail}"


def lenient_rfc4180_dfa() -> Dfa:
    """RFC 4180 with bare quotes inside unquoted fields allowed as data.

    Identical to :func:`repro.dfa.csv.rfc4180_dfa` except the Table 1
    transition ``FLD --"--> INV`` becomes ``FLD --"--> FLD`` emitting
    DATA.  Every input RFC 4180 accepts, this automaton parses with
    byte-identical emissions; it additionally accepts inputs like
    ``a"b,c`` that RFC 4180 rejects — a strict behavioural superset,
    which is exactly the shape :func:`repro.dfa.minimize.included`
    certifies.
    """
    b = DfaBuilder()
    b.state("EOR", accepting=True)
    b.state("ENC")
    b.state("FLD", accepting=True)
    b.state("EOF", accepting=True)
    b.state("ESC", accepting=True)
    b.invalid_state("INV")
    b.group("EOL", b"\n")
    b.group("QUOTE", b'"')
    b.group("DELIM", b",")
    b.catch_all("OTHER")
    data = Emission.DATA
    control = Emission.CONTROL
    for state in ("EOR", "FLD", "EOF", "ESC"):
        b.transition(state, "EOL", "EOR", Emission.RECORD_DELIMITER)
        b.transition(state, "DELIM", "EOF", Emission.FIELD_DELIMITER)
    for state in ("EOR", "EOF"):
        b.transition(state, "OTHER", "FLD", data)
        b.transition(state, "QUOTE", "ENC", control)
    b.transition("FLD", "OTHER", "FLD", data)
    b.transition("FLD", "QUOTE", "FLD", data)  # the one lenient edge
    b.transition("ENC", "EOL", "ENC", data)
    b.transition("ENC", "DELIM", "ENC", data)
    b.transition("ENC", "OTHER", "ENC", data)
    b.transition("ENC", "QUOTE", "ESC", control)
    b.transition("ESC", "QUOTE", "ENC", data)
    b.start("EOR")
    return b.build()


def verify_automaton(name: str, dfa: Dfa) -> list[ProofViolation]:
    """Per-automaton obligations: equivalence, idempotence, agreement."""
    violations = []
    canon = canonicalize(dfa)
    if not equivalent(dfa, canon.dfa):
        violations.append(ProofViolation(
            "equivalence", name,
            f"canonical form ({canon.dfa.num_states} states) is not "
            f"behaviourally equivalent to the source "
            f"({dfa.num_states} states)"))
    if not is_canonical(canon.dfa):
        violations.append(ProofViolation(
            "idempotence", name,
            "canonicalize(canonicalize(d).dfa) differs from "
            "canonicalize(d).dfa — the canonical form is not a fixed "
            "point"))
    if not same_partition(parallel_partition(dfa), hopcroft_partition(dfa)):
        violations.append(ProofViolation(
            "engine-agreement", name,
            "data-parallel refinement and Hopcroft's algorithm computed "
            "different state partitions"))
    return violations


def verify_distinctness(dfas: dict[str, Dfa]) -> list[ProofViolation]:
    """No two registered automata may be behaviourally equivalent."""
    violations = []
    names = sorted(dfas)
    for i, name_a in enumerate(names):  # parlint: disable=PPR401 -- pairwise sweep over the ~7-entry registry, not input data
        for name_b in names[i + 1:]:
            if equivalent(dfas[name_a], dfas[name_b]):
                violations.append(ProofViolation(
                    "distinctness", f"{name_a},{name_b}",
                    "two registry entries are behaviourally equivalent; "
                    "alias one to the other instead"))
    return violations


def verify_inclusion() -> list[ProofViolation]:
    """RFC 4180 ⊂ lenient RFC 4180, strictly."""
    violations = []
    strict = registered_dfas()["rfc4180"]
    lenient = lenient_rfc4180_dfa()
    if not included(strict, lenient):
        violations.append(ProofViolation(
            "inclusion", "rfc4180,lenient-rfc4180",
            "rfc4180 is not included in its lenient variant"))
    if included(lenient, strict):
        violations.append(ProofViolation(
            "inclusion", "lenient-rfc4180,rfc4180",
            "inclusion is not strict: the lenient variant is included "
            "in rfc4180 (bare-quote inputs should separate them)"))
    if equivalent(strict, lenient):
        violations.append(ProofViolation(
            "inclusion", "rfc4180,lenient-rfc4180",
            "strict and lenient variants are equivalent; the lenient "
            "edge changed nothing"))
    return violations


def verify_all() -> dict[str, list[ProofViolation]]:
    """Every proof obligation; ``{subject: [violations]}``, empty lists
    meaning the obligation holds."""
    dfas = registered_dfas()
    report = {name: verify_automaton(name, dfa)
              for name, dfa in sorted(dfas.items())}
    report["<distinctness>"] = verify_distinctness(dfas)
    report["<inclusion>"] = verify_inclusion()
    return report
