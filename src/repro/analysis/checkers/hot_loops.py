"""Checker: no scalar Python loops in hot-path modules (PPR401).

The repro's performance claim rests on every per-symbol step being a
vectorised NumPy sweep (the stand-in for a CUDA kernel): one Python-level
``for`` over the input's bytes turns a memory-bound kernel into an
interpreter-bound crawl, and such regressions creep in silently through
innocent-looking fixes.  Modules that implement the byte-bound pipeline
phases carry a ``# parlint: hot-path`` marker; in them, **every**
``for``/``while`` statement inside a function must either be vectorised
away or carry an explicit ``# parlint: disable=PPR401 -- <why>`` waiver
(legitimate reasons: a trip count bounded by a small constant such as
``chunk_size`` or ``2**radix_bits`` with vectorised bodies, or a scalar
fallback that is off the production path).

Comprehensions and generator expressions are deliberately not flagged:
they are overwhelmingly used here for small fixed-size sequences, and
flagging them drowns the signal.  A per-symbol comprehension would be
caught in review by the benchmark gate instead.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, register

__all__ = ["HotPathLoopChecker"]


@register
class HotPathLoopChecker(Checker):
    name = "hot-loops"
    codes = {
        "PPR401": "explicit Python loop in a hot-path module "
                  "(vectorise, or waive with a justification)",
    }

    def check(self, module):
        if not module.pragmas.hot_path:
            return
        reported: set[int] = set()
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(func):
                if isinstance(node, (ast.For, ast.While)):
                    if id(node) in reported:
                        continue
                    reported.add(id(node))
                    kind = "for" if isinstance(node, ast.For) else "while"
                    yield self.diagnostic(
                        module, node.lineno, "PPR401",
                        f"`{kind}` loop in hot-path function "
                        f"{func.name!r}: vectorise over the chunk/symbol "
                        f"axis or waive with a justifying comment")
