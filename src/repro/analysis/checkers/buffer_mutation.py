"""Checker: mutation of borrowed zero-copy buffers (PPR601-603).

The fused convert path and the columnar slicing operators hand out
*views* — string columns alias the partition CSS, ``slice_buffers``
aliases its input column, ``_open_shard`` aliases a shared-memory
segment.  Writing through any of those views corrupts every sibling
alias, usually far from the write and only for some shard geometries.
Three mutation families are flagged on values the ownership dataflow
(:mod:`repro.analysis.dataflow`) proves borrowed:

* **PPR601** — a plain store through the alias: ``view[i] = x``,
  ``view[a:b] = x``, ``view += x`` (in-place ufunc) or an attribute
  store through it (``view.flags.writeable = True``).
* **PPR602** — a registered in-place ndarray method on the alias:
  ``sort``/``fill``/``put``/``partition``/… (see
  :data:`repro.analysis.dataflow.INPLACE_METHODS`), plus ``byteswap``
  with a truthy ``inplace=`` and ``setflags`` enabling write.
* **PPR603** — the alias passed as an ``out=`` target: NumPy writes the
  result straight into the shared buffer.

Fix by copying first (``view.copy()``) or by restructuring so the
function owns the buffer it writes; annotate deliberate exceptions with
``# parlint: owned`` (asserting a copy the analysis cannot see) or a
justified ``disable=`` waiver.  The runtime twin of this checker is
:mod:`repro.columnar.guard`, which makes every handed-out view
read-only under the parity suites so a missed write raises immediately.
"""

from __future__ import annotations

from repro.analysis.dataflow import analyse_module
from repro.analysis.registry import Checker, register

__all__ = ["BufferMutationChecker"]

_CODE_BY_KIND = {
    "subscript-store": "PPR601",
    "attribute-store": "PPR601",
    "augassign": "PPR601",
    "inplace-method": "PPR602",
    "out-kwarg": "PPR603",
}

_VERB_BY_KIND = {
    "subscript-store": "stores into",
    "attribute-store": "assigns an attribute of",
    "augassign": "updates in place",
    "inplace-method": "calls an in-place method on",
    "out-kwarg": "uses as an out= target",
}


@register
class BufferMutationChecker(Checker):
    name = "buffer-mutation"
    codes = {
        "PPR601": "write through a borrowed buffer view (subscript/"
                  "attribute store or augmented assignment)",
        "PPR602": "in-place ndarray method invoked on a borrowed "
                  "buffer view",
        "PPR603": "borrowed buffer view passed as an out= target",
    }

    def check(self, module):
        for event in analyse_module(module):
            code = _CODE_BY_KIND.get(event.kind)
            if code is None:
                continue
            verb = _VERB_BY_KIND[event.kind]
            yield self.diagnostic(
                module, event.line, code,
                f"{event.function}() {verb} {event.name!r}, a borrowed "
                f"view ({event.origin}); mutating it corrupts every "
                f"alias of the shared buffer — copy first or take "
                f"ownership")
