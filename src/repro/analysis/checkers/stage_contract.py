"""Checker: stages honour their declared payload contracts (PPR1xx).

A :class:`~repro.core.stages.Stage` declares ``input_type`` and
``output_type`` payload dataclasses.  The whole pipeline's partial-run /
resume machinery — and the sharded executor's re-entry at ``validate``
— is sound only if every stage (a) reads nothing off its payload beyond
the declared input dataclass's fields and (b) constructs exactly its
declared output payload type.  This checker enforces both statically.

Payload field tables are resolved from dataclasses defined in the
analysed file itself (which covers the real pipeline module and the
self-test corpus); names that are imported instead are resolved against
the canonical payload classes of :mod:`repro.core.stages` via runtime
reflection.
"""

from __future__ import annotations

import ast
from functools import lru_cache

from repro.analysis.astutils import (
    class_methods,
    dataclass_fields_by_name,
    stage_subclasses,
)
from repro.analysis.registry import Checker, register

__all__ = ["StageContractChecker"]

#: Methods that receive the stage's input payload as their third argument.
_PAYLOAD_METHODS = ("run", "applies")


@lru_cache(maxsize=1)
def _canonical_payloads() -> dict[str, set[str]]:
    """Field tables of the payload dataclasses in ``repro.core.stages``."""
    import dataclasses

    import repro.core.stages as stages

    table: dict[str, set[str]] = {}
    for name in dir(stages):
        obj = getattr(stages, name)
        if (isinstance(obj, type) and dataclasses.is_dataclass(obj)
                and obj.__module__ == "repro.core.stages"
                and name != "PipelineContext"):
            table[name] = {f.name for f in dataclasses.fields(obj)}
    return table


def _declared_type(cls: ast.ClassDef, attribute: str) -> str | None:
    """The Name assigned to ``input_type``/``output_type``, if present."""
    for stmt in cls.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == attribute:
                if isinstance(value, ast.Name):
                    return value.id
    return None


def _payload_param(method: ast.FunctionDef) -> str | None:
    """Name of the payload parameter: ``(self, ctx, payload)``."""
    args = method.args.args
    return args[2].arg if len(args) >= 3 else None


@register
class StageContractChecker(Checker):
    name = "stage-contract"
    codes = {
        "PPR101": "stage reads a payload attribute its declared input "
                  "payload dataclass does not define",
        "PPR102": "stage constructs a payload type other than its "
                  "declared output_type",
        "PPR103": "Stage subclass does not declare input_type and "
                  "output_type payload dataclasses",
    }

    def check(self, module):
        stages = stage_subclasses(module.tree)
        if not stages:
            return
        local_payloads = dataclass_fields_by_name(module.tree)

        def fields_of(type_name):
            if type_name in local_payloads:
                return local_payloads[type_name]
            return _canonical_payloads().get(type_name)

        # Every name that denotes *some* payload dataclass: constructing
        # any of them other than the declared output is a PPR102.
        known_payloads = set(local_payloads)
        try:
            known_payloads |= set(_canonical_payloads())
        except Exception:  # canonical module unavailable: lint standalone
            pass

        stage_by_name = {cls.name: cls for cls in stages}
        for cls in stages:
            yield from self._check_stage(module, cls, stage_by_name,
                                         fields_of, known_payloads)

    def _check_stage(self, module, cls, stage_by_name, fields_of,
                     known_payloads):
        input_type = self._inherited(cls, "input_type", stage_by_name)
        output_type = self._inherited(cls, "output_type", stage_by_name)
        if input_type is None or output_type is None:
            yield self.diagnostic(
                module, cls.lineno, "PPR103",
                f"stage {cls.name!r} declares no "
                f"{'input_type' if input_type is None else 'output_type'}"
                f" payload dataclass")
            return
        input_fields = fields_of(input_type)

        for method_name in _PAYLOAD_METHODS:
            method = class_methods(cls).get(method_name)
            if method is None:
                continue
            payload = _payload_param(method)
            if payload is None:
                continue
            for node in ast.walk(method):
                if (isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == payload
                        and not node.attr.startswith("__")):
                    if input_fields is not None \
                            and node.attr not in input_fields:
                        yield self.diagnostic(
                            module, node.lineno, "PPR101",
                            f"stage {cls.name!r} reads "
                            f"payload.{node.attr}, which input payload "
                            f"{input_type!r} does not declare")
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id in known_payloads
                        and node.func.id != output_type
                        and method_name == "run"):
                    yield self.diagnostic(
                        module, node.lineno, "PPR102",
                        f"stage {cls.name!r} constructs "
                        f"{node.func.id}, but declares output payload "
                        f"{output_type!r}")

    @staticmethod
    def _inherited(cls, attribute, stage_by_name):
        """Resolve a declared type through in-file stage inheritance."""
        seen = set()
        current = cls
        while current is not None and current.name not in seen:
            seen.add(current.name)
            declared = _declared_type(current, attribute)
            if declared is not None:
                return declared
            parent = None
            for base in current.bases:
                if isinstance(base, ast.Name) \
                        and base.id in stage_by_name:
                    parent = stage_by_name[base.id]
                    break
            current = parent
        return None
