"""Checker: multiprocess safety of stages and worker tasks (PPR3xx).

The sharded executor ships work to a ``ProcessPoolExecutor``; the
pipeline's correctness argument (bit-identical to the serial schedule)
additionally requires stages to be *pure* — same payload in, same
payload out, regardless of process, schedule or wall clock.  Three
hazard families are enforced:

* **PPR301** — a callable handed to a pool's ``submit``/``map`` is a
  lambda or a nested function: unpicklable under the ``spawn`` start
  method, so the parse dies (or silently degrades) depending on the
  platform default.
* **PPR302** — a stage/worker mutates module-level state (``global``
  rebinding, or mutating calls / item writes on a module-level list,
  dict or set): each worker process mutates *its own copy*, so results
  depend on the shard schedule.
* **PPR303** — a stage/worker reads a nondeterminism source
  (``time.*``, ``random.*``, ``np.random.*``, ``os.urandom``,
  ``uuid.*``, ``secrets.*``, ``datetime.now``): reruns stop being
  reproducible, breaking the executor-equivalence property tests.
* **PPR304** — a stage/worker iterates a ``set``/``frozenset``
  expression: iteration order depends on ``PYTHONHASHSEED`` for str
  keys, a classic source of run-to-run nondeterminism.

Audited scopes: ``run``/``applies`` methods of ``Stage`` subclasses
(detected structurally) and any function marked ``# parlint: worker``
(the marker the :mod:`repro.exec.sharded` worker tasks carry).
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import (
    class_methods,
    def_anchor_lines,
    dotted_name,
    stage_subclasses,
)
from repro.analysis.registry import Checker, register

__all__ = ["MultiprocessSafetyChecker"]

_POOL_METHODS = {"submit", "map", "imap", "imap_unordered", "apply_async",
                 "starmap"}
_POOL_HINTS = ("pool", "executor", "mapper")
_MUTATORS = {"append", "extend", "add", "update", "insert", "remove",
             "discard", "pop", "popitem", "clear", "setdefault",
             "__setitem__"}
_NONDET_PREFIXES = ("time.", "random.", "np.random.", "numpy.random.",
                    "secrets.", "uuid.")
_NONDET_EXACT = {"os.urandom", "datetime.now", "datetime.utcnow",
                 "datetime.datetime.now", "datetime.datetime.utcnow"}


def _module_mutables(tree: ast.Module) -> set[str]:
    """Module-level names bound to mutable literals or constructors."""
    mutables: set[str] = set()
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        value = stmt.value
        is_mutable = isinstance(value, (ast.List, ast.Dict, ast.Set))
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            is_mutable |= value.func.id in {"list", "dict", "set",
                                            "defaultdict", "OrderedDict",
                                            "Counter", "deque"}
        if is_mutable:
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    mutables.add(target.id)
    return mutables


def _audited_functions(module) -> list[tuple[str, ast.FunctionDef]]:
    """(description, function) pairs whose bodies must be pure."""
    audited: list[tuple[str, ast.FunctionDef]] = []
    for cls in stage_subclasses(module.tree):
        for name in ("run", "applies"):
            method = class_methods(cls).get(name)
            if method is not None:
                audited.append((f"stage method {cls.name}.{name}", method))
    for node in ast.walk(module.tree):
        if isinstance(node, ast.FunctionDef) \
                and module.pragmas.has_worker_marker(
                    def_anchor_lines(node)):
            audited.append((f"worker function {node.name}", node))
    return audited


@register
class MultiprocessSafetyChecker(Checker):
    name = "mp-safety"
    codes = {
        "PPR301": "lambda or nested function submitted to a process "
                  "pool (unpicklable under spawn)",
        "PPR302": "stage/worker mutates module-level state (divergent "
                  "per-process copies)",
        "PPR303": "stage/worker reads a nondeterminism source "
                  "(time/random/urandom/uuid)",
        "PPR304": "stage/worker iterates a set (hash-seed dependent "
                  "order)",
    }

    def check(self, module):
        yield from self._check_pool_calls(module)
        mutables = _module_mutables(module.tree)
        for description, func in _audited_functions(module):
            yield from self._check_purity(module, description, func,
                                          mutables)

    # -- PPR301 ------------------------------------------------------------

    def _check_pool_calls(self, module):
        nested = self._nested_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._pool_call_target(node)
            if target is None:
                continue
            for arg in node.args:
                if isinstance(arg, ast.Lambda):
                    yield self.diagnostic(
                        module, arg.lineno, "PPR301",
                        f"lambda passed to {target}: lambdas are not "
                        f"picklable and break process-pool execution")
                elif isinstance(arg, ast.Name) and arg.id in nested:
                    yield self.diagnostic(
                        module, arg.lineno, "PPR301",
                        f"nested function {arg.id!r} passed to {target}:"
                        f" only module-level functions pickle under the "
                        f"spawn start method")

    @staticmethod
    def _pool_call_target(call: ast.Call) -> str | None:
        """``pool.map``-style call target, or a worker-mapper call."""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _POOL_METHODS:
            owner = dotted_name(func.value) or ""
            if any(hint in owner.lower() for hint in _POOL_HINTS):
                return f"{owner}.{func.attr}"
        if isinstance(func, ast.Name) \
                and any(hint in func.id.lower() for hint in _POOL_HINTS):
            return func.id
        return None

    @staticmethod
    def _nested_function_names(tree: ast.Module) -> set[str]:
        """Names of functions defined inside other functions."""
        nested: set[str] = set()
        for outer in ast.walk(tree):
            if not isinstance(outer, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(outer):
                if inner is not outer and isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.add(inner.name)
        return nested

    # -- PPR302/303/304 ----------------------------------------------------

    def _check_purity(self, module, description, func, mutables):
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                yield self.diagnostic(
                    module, node.lineno, "PPR302",
                    f"{description} rebinds module global(s) "
                    f"{', '.join(node.names)}; per-process copies "
                    f"diverge under the sharded executor")
            elif isinstance(node, ast.Call):
                yield from self._check_mutating_call(module, description,
                                                    node, mutables)
                yield from self._check_nondeterminism(module, description,
                                                     node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                yield from self._check_subscript_write(module, description,
                                                      node, mutables)
            elif isinstance(node, (ast.For, ast.comprehension)):
                yield from self._check_set_iteration(module, description,
                                                    node)

    def _check_mutating_call(self, module, description, node, mutables):
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Name)
                and func.value.id in mutables):
            yield self.diagnostic(
                module, node.lineno, "PPR302",
                f"{description} mutates module-level "
                f"{func.value.id!r} via .{func.attr}(); per-process "
                f"copies diverge under the sharded executor")

    def _check_subscript_write(self, module, description, node, mutables):
        targets = node.targets if isinstance(node, ast.Assign) \
            else [node.target]
        for target in targets:
            if (isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in mutables):
                yield self.diagnostic(
                    module, target.lineno, "PPR302",
                    f"{description} writes into module-level "
                    f"{target.value.id!r}; per-process copies diverge "
                    f"under the sharded executor")

    def _check_nondeterminism(self, module, description, node):
        name = dotted_name(node.func)
        if name is None:
            return
        if name in _NONDET_EXACT or name.startswith(_NONDET_PREFIXES):
            yield self.diagnostic(
                module, node.lineno, "PPR303",
                f"{description} calls {name}(); stages and worker "
                f"tasks must be deterministic pure functions of their "
                f"payload")

    def _check_set_iteration(self, module, description, node):
        iterable = node.iter
        is_set = isinstance(iterable, ast.Set)
        if isinstance(iterable, ast.Call) \
                and isinstance(iterable.func, ast.Name):
            is_set |= iterable.func.id in {"set", "frozenset"}
        if is_set:
            yield self.diagnostic(
                module, iterable.lineno, "PPR304",
                f"{description} iterates a set; iteration order is "
                f"hash-seed dependent — sort or use a list/tuple")
