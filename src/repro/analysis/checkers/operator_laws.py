"""Checker: every scan operator is a registered, lawful monoid (PPR2xx).

The prefix-scan decomposition of paper §2 is only valid for associative
operators with an identity.  This checker closes the loop between the
code and that precondition:

* **PPR201** — a monoid-shaped class (defines both ``combine`` and
  ``identity``) is not enrolled in the law registry
  (:data:`repro.analysis.oplaws.LAW_SPECS`).  Registration is what puts
  an operator under the exhaustive associativity+identity property
  checks of the law test tier, so an unregistered operator is an
  unproven scan precondition.
* **PPR202** — a registered operator *fails* its laws on the registered
  domain.  The checker actually executes the exhaustive check when it
  encounters the defining class, so ``parparaw lint`` itself proves the
  STV-composition and rel/abs-offset laws on every run (the test tier
  re-proves them under pytest).

``typing.Protocol`` classes (the :class:`~repro.scan.operators.Monoid`
structural type itself) are exempt — they declare the shape, they are
not operators.
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import base_names
from repro.analysis.registry import Checker, register

__all__ = ["OperatorLawChecker"]


def _is_monoid_shaped(cls: ast.ClassDef) -> bool:
    methods = {stmt.name for stmt in cls.body
               if isinstance(stmt, ast.FunctionDef)}
    return "combine" in methods and "identity" in methods


def _is_protocol(cls: ast.ClassDef) -> bool:
    return any(base in ("Protocol", "ABC") for base in base_names(cls))


@register
class OperatorLawChecker(Checker):
    name = "operator-laws"
    codes = {
        "PPR201": "monoid-shaped class is not enrolled in the "
                  "scan-operator law registry (oplaws.LAW_SPECS)",
        "PPR202": "registered scan operator violates the monoid laws "
                  "on its registered domain",
    }

    def check(self, module):
        monoids = [node for node in module.tree.body
                   if isinstance(node, ast.ClassDef)
                   and _is_monoid_shaped(node)
                   and not _is_protocol(node)]
        if not monoids:
            return
        from repro.analysis.oplaws import LAW_SPECS, check_monoid_laws

        for cls in monoids:
            spec = LAW_SPECS.get(cls.name)
            if spec is None or spec.module != module.module:
                yield self.diagnostic(
                    module, cls.lineno, "PPR201",
                    f"{cls.name!r} defines combine/identity but is not "
                    f"registered in repro.analysis.oplaws.LAW_SPECS; "
                    f"scan operators must carry exhaustive "
                    f"associativity+identity checks (paper §2)")
                continue
            violations = check_monoid_laws(spec.factory(), spec.domain())
            for violation in violations:
                yield self.diagnostic(
                    module, cls.lineno, "PPR202",
                    f"{cls.name!r}: {violation}")
