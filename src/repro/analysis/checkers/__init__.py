"""Built-in parlint checkers.

Importing this package registers every checker with
:mod:`repro.analysis.registry` (import side effect by design — the
registry's ``all_checkers()`` imports this module lazily).
"""

from repro.analysis.checkers import (  # noqa: F401  (registration imports)
    api_hygiene,
    buffer_escape,
    buffer_mutation,
    hot_loops,
    mp_safety,
    operator_laws,
    stage_contract,
)

__all__ = [
    "api_hygiene",
    "buffer_escape",
    "buffer_mutation",
    "hot_loops",
    "mp_safety",
    "operator_laws",
    "stage_contract",
]
