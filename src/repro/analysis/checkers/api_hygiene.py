"""Checker: public-API hygiene and layering (PPR5xx).

Two families of rules:

* ``__all__`` consistency — **PPR501** an ``__all__`` entry that names
  nothing defined or imported in the module, **PPR502** a duplicate
  ``__all__`` entry, **PPR504** a public module (not ``__init__`` /
  ``__main__`` / ``_private``) with no ``__all__`` at all.
* Cross-layer imports — **PPR503**.  The repo's packages form a strict
  DAG (kernel utilities at the bottom, orchestration at the top); an
  import against that DAG couples layers that the stacked-PR roadmap
  needs to stay independently replaceable (e.g. ``repro.core`` must not
  import ``repro.exec`` — executors depend on the pipeline, never the
  reverse).  The full import graph, including imports inside function
  bodies, is checked; deliberate lazy imports that would otherwise form
  a cycle carry explicit waivers.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, register

__all__ = ["ApiHygieneChecker", "ALLOWED_LAYER_IMPORTS"]

#: Kernel-level packages any layer may use.
_KERNEL = frozenset({"repro.errors", "repro.utils"})

#: package -> packages it may import (in addition to _KERNEL and itself).
#: Packages absent from this table (the root package, __main__, tools)
#: are unconstrained.
ALLOWED_LAYER_IMPORTS: dict[str, frozenset[str]] = {
    "repro.errors": frozenset(),
    "repro.utils": frozenset(),
    "repro.obs": frozenset(),
    "repro.scan": frozenset(),
    # The columnar buffer layer sits just above the scan primitives: its
    # structural ops (offset rebase, gather) are built on exclusive_sum.
    "repro.columnar": frozenset({"repro.scan"}),
    # DFA minimisation's data-parallel partition refinement is scan-shaped
    # (dense relabelling via inclusive_sum), so the automaton layer may use
    # the scan primitives; repro.scan remains a leaf and never imports back.
    "repro.dfa": frozenset({"repro.scan"}),
    "repro.gpusim": frozenset({"repro.dfa"}),
    "repro.kernels": frozenset({"repro.dfa", "repro.obs"}),
    "repro.core": frozenset({"repro.scan", "repro.columnar", "repro.dfa",
                             "repro.gpusim", "repro.kernels",
                             "repro.obs"}),
    "repro.exec": frozenset({"repro.scan", "repro.columnar", "repro.dfa",
                             "repro.gpusim", "repro.kernels",
                             "repro.core", "repro.obs"}),
    "repro.streaming": frozenset({"repro.scan", "repro.columnar",
                                  "repro.dfa", "repro.gpusim",
                                  "repro.kernels",
                                  "repro.core", "repro.exec",
                                  "repro.obs"}),
    # The planner closes the obs -> gpusim -> options loop: it reads the
    # cost model and calibrates it with observed timings, and it builds
    # ParseOptions — but repro.core never imports it back (the parser
    # reaches the default planner through a registered factory).
    "repro.plan": frozenset({"repro.scan", "repro.columnar", "repro.dfa",
                             "repro.gpusim", "repro.kernels",
                             "repro.core", "repro.obs"}),
    # The service sits at the top of the stack: it may orchestrate
    # everything below it, and nothing below may import it back.
    "repro.serve": frozenset({"repro.scan", "repro.columnar",
                              "repro.dfa", "repro.gpusim",
                              "repro.kernels", "repro.core",
                              "repro.exec", "repro.obs",
                              "repro.streaming", "repro.plan"}),
    "repro.baselines": frozenset({"repro.scan", "repro.columnar",
                                  "repro.dfa", "repro.gpusim",
                                  "repro.core"}),
    "repro.workloads": frozenset({"repro.scan", "repro.columnar",
                                  "repro.dfa", "repro.gpusim",
                                  "repro.core"}),
    "repro.analysis": frozenset({"repro.scan", "repro.columnar",
                                 "repro.dfa", "repro.gpusim",
                                 "repro.core", "repro.exec"}),
}


def _package_of(module_name: str) -> str:
    parts = module_name.split(".")
    return ".".join(parts[:2]) if len(parts) >= 2 else module_name


def _imported_repro_modules(tree: ast.Module):
    """``(lineno, dotted_module)`` for every repro.* import in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module and node.module.split(".")[0] == "repro":
                yield node.lineno, node.module


def _defined_names(tree: ast.Module) -> set[str]:
    """Top-level names a module actually binds (defs, classes, imports,
    assignments)."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # Names bound under guards (TYPE_CHECKING, optional deps).
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.FunctionDef, ast.ClassDef)):
                    names.add(sub.name)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name != "*":
                            names.add(alias.asname
                                      or alias.name.split(".")[0])
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
    return names


def _dunder_all(tree: ast.Module):
    """``(lineno, [entries])`` of the module's ``__all__``, if literal."""
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) \
                and any(isinstance(t, ast.Name) and t.id == "__all__"
                        for t in stmt.targets) \
                and isinstance(stmt.value, (ast.List, ast.Tuple)):
            entries = []
            for element in stmt.value.elts:
                if isinstance(element, ast.Constant) \
                        and isinstance(element.value, str):
                    entries.append((element.lineno, element.value))
            return stmt.lineno, entries
    return None


@register
class ApiHygieneChecker(Checker):
    name = "api-hygiene"
    codes = {
        "PPR501": "__all__ names something the module does not define",
        "PPR502": "duplicate entry in __all__",
        "PPR503": "import violates the package layering DAG",
        "PPR504": "public module defines no __all__",
    }

    def check(self, module):
        yield from self._check_all(module)
        yield from self._check_layering(module)

    # -- __all__ -----------------------------------------------------------

    def _check_all(self, module):
        basename = module.path.name
        found = _dunder_all(module.tree)
        if found is None:
            if basename not in ("__init__.py", "__main__.py") \
                    and not basename.startswith("_"):
                yield self.diagnostic(
                    module, 1, "PPR504",
                    "public module defines no __all__; declare the "
                    "intended public surface explicitly")
            return
        _, entries = found
        defined = _defined_names(module.tree)
        seen: set[str] = set()
        for lineno, entry in entries:
            if entry in seen:
                yield self.diagnostic(
                    module, lineno, "PPR502",
                    f"duplicate __all__ entry {entry!r}")
            seen.add(entry)
            if entry not in defined:
                yield self.diagnostic(
                    module, lineno, "PPR501",
                    f"__all__ names {entry!r}, which the module does "
                    f"not define or import")

    # -- layering ----------------------------------------------------------

    def _check_layering(self, module):
        if module.module is None:
            return
        package = _package_of(module.module)
        allowed = ALLOWED_LAYER_IMPORTS.get(package)
        if allowed is None:
            return
        permitted = allowed | _KERNEL | {package}
        for lineno, imported in _imported_repro_modules(module.tree):
            target = _package_of(imported)
            if target == "repro":  # the root namespace itself
                continue
            if target not in permitted:
                yield self.diagnostic(
                    module, lineno, "PPR503",
                    f"{package} must not import {target} (layering: "
                    f"{package} may use "
                    f"{', '.join(sorted(allowed)) or 'kernel only'})")
