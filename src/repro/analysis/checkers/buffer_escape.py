"""Checker: borrowed buffer views escaping their frame (PPR604-606).

A borrowed view is only valid while its backing buffer is: a CSS slice
dies with the partition result, a shared-memory view dies with the
segment (``_open_shard``'s contract), a ``slice_buffers`` view dies
with the source column.  A view that outlives its frame is a
use-after-free waiting for a GC or ``shm.close()`` — or, subtler, a
mutation hazard handed to a caller who believes the array is theirs.
The ownership dataflow (:mod:`repro.analysis.dataflow`) flags three
escape routes:

* **PPR604** — a borrowed view is returned or yielded from a function
  not marked ``# parlint: returns-borrowed``.  Functions that hand out
  views *by contract* (``slice_buffers``, ``column_view``) carry the
  marker; everyone else must copy before returning.
* **PPR605** — a nested function or lambda captures a borrowed name:
  the closure can outlive the frame (callbacks, late binding in loops),
  carrying the dying view with it.
* **PPR606** — a borrowed view is stored into an object attribute
  (``self.cache = view``): the attribute outlives the call, so the
  object now holds a reference into a buffer it does not own.  Storing
  *into a subscript* of an owned array (``owned[a:b] = view``) is
  deliberately not an escape — NumPy copies the values.

Fix by copying at the boundary (``view.copy()``) or by marking the
function ``returns-borrowed`` when handing out views is its documented
contract (which moves the obligation to callers: the dataflow then
treats its results as borrowed).
"""

from __future__ import annotations

from repro.analysis.dataflow import analyse_module
from repro.analysis.registry import Checker, register

__all__ = ["BufferEscapeChecker"]

_CODE_BY_KIND = {
    "return": "PPR604",
    "yield": "PPR604",
    "closure": "PPR605",
    "store-escape": "PPR606",
}


@register
class BufferEscapeChecker(Checker):
    name = "buffer-escape"
    codes = {
        "PPR604": "borrowed buffer view returned/yielded without a "
                  "returns-borrowed contract",
        "PPR605": "closure captures a borrowed buffer view that may "
                  "outlive its frame",
        "PPR606": "borrowed buffer view stored into an outliving "
                  "object attribute",
    }

    def check(self, module):
        for event in analyse_module(module):
            code = _CODE_BY_KIND.get(event.kind)
            if code is None:
                continue
            if code == "PPR604":
                detail = (f"{event.function}() {event.kind}s "
                          f"{event.name!r}, a borrowed view "
                          f"({event.origin}); copy before returning or "
                          f"mark the function returns-borrowed")
            elif code == "PPR605":
                detail = (f"{event.function}() captures borrowed view "
                          f"{event.name!r} in a closure "
                          f"({event.origin}); the closure may outlive "
                          f"the buffer — pass a copy instead")
            else:
                detail = (f"{event.function}() stores borrowed view "
                          f"into {event.name!r} ({event.origin}); the "
                          f"attribute outlives the call — store a copy "
                          f"or document ownership transfer")
            yield self.diagnostic(module, event.line, code, detail)
