"""Parlint pragma comments: waivers, markers and ownership annotations.

Pragmas are ordinary ``#`` comments beginning with ``parlint:``.  An
optional justification follows `` -- `` and is encouraged for every
waiver (the repo convention is that a waiver without a reason does not
survive review).

Waivers
-------
``# parlint: disable=PPR401``
    Waive the listed codes (comma-separated) for diagnostics anchored to
    this physical line.  ``disable`` with no codes waives everything on
    the line.  When the pragma sits on any physical line of a multi-line
    *simple* statement (a call spanning several lines, say), the waiver
    covers the whole statement — the driver expands it over the
    statement's extent (:meth:`FilePragmas.attach_statement_spans`).
``# parlint: disable-file=PPR401,PPR303``
    Waive the listed codes for the whole file.
``# parlint: skip-file``
    Exclude the file from analysis entirely.

Markers
-------
``# parlint: hot-path``
    Marks the module as performance-critical: the hot-path checker flags
    every explicit Python loop in it (PPR401) unless waived.
``# parlint: worker``
    On (or adjacent to) a ``def``: the function is shipped to worker
    processes, so the multiprocess-safety checker audits its body.  The
    marker may trail the ``def`` line, any decorator line, or sit on the
    line directly above the ``def`` or its first decorator (see
    :func:`repro.analysis.astutils.def_anchor_lines`).
``# parlint: module=repro.core.example``
    Overrides the dotted module name inferred from the file path — used
    by the self-test corpus to exercise package-layering rules on files
    that live outside ``src/``.

Ownership annotations (dataflow tier)
-------------------------------------
``# parlint: borrowed`` / ``# parlint: borrowed=css,buf``
    On (or adjacent to) a ``def``: the named parameters (all parameters
    when no names are given) are *borrowed* views of shared buffers —
    the dataflow checkers (PPR6xx) flag any mutation of them or of
    aliases derived from them.  On an assignment line, forces the
    assigned name(s) borrowed (an ownership assertion the analysis
    cannot infer).
``# parlint: returns-borrowed``
    On (or adjacent to) a ``def``: the function intentionally returns
    borrowed views (``slice_buffers`` is the canonical example), so a
    borrowed value escaping through its ``return``/``yield`` is not a
    violation — and *callers* of the function treat its result as
    borrowed.
``# parlint: owned``
    On an assignment line: asserts the assigned name(s) own their
    buffer (e.g. just after a copy the analysis cannot see through),
    clearing any inferred borrow.

Pragmas are extracted with a line-based scan, not the tokenizer; a
pragma-shaped string inside a string literal would be honoured.  This is
the usual linter trade-off (flake8's ``noqa`` behaves the same way) and
keeps the scanner trivially robust to files that do not tokenize.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["FilePragmas", "parse_pragmas"]

_PRAGMA = re.compile(r"#\s*parlint:\s*(?P<body>[^#]*)")


@dataclass
class FilePragmas:
    """All pragma state of one source file."""

    #: ``skip-file`` was present.
    skip_file: bool = False
    #: Codes waived for the whole file (``disable-file=``).
    file_disabled: set[str] = field(default_factory=set)
    #: Line -> codes waived on that line; an empty set waives all codes.
    line_disabled: dict[int, set[str]] = field(default_factory=dict)
    #: Module is marked ``hot-path``.
    hot_path: bool = False
    #: Lines carrying a ``worker`` marker.
    worker_lines: set[int] = field(default_factory=set)
    #: Line -> parameter names marked ``borrowed`` (empty set = all).
    borrowed_lines: dict[int, set[str]] = field(default_factory=dict)
    #: Lines carrying a ``returns-borrowed`` marker.
    returns_borrowed_lines: set[int] = field(default_factory=set)
    #: Lines carrying an ``owned`` assertion.
    owned_lines: set[int] = field(default_factory=set)
    #: Explicit ``module=`` override, if any.
    module_override: str | None = None

    def is_waived(self, code: str, line: int) -> bool:
        """Whether a diagnostic ``code`` anchored at ``line`` is waived."""
        if self.skip_file or code in self.file_disabled:
            return True
        codes = self.line_disabled.get(line)
        if codes is None:
            return False
        return not codes or code in codes

    def attach_statement_spans(
            self, spans: Sequence[tuple[int, int]]) -> None:
        """Extend line waivers over multi-line statement extents.

        ``spans`` is a list of ``(first_line, last_line)`` pairs of
        simple statements spanning more than one physical line (see
        :func:`repro.analysis.astutils.statement_spans`).  A waiver on
        any line of such a statement then covers every line of it, so a
        ``# parlint: disable=…`` trailing a multi-line call waives the
        diagnostic anchored at the call's first line (and vice versa).
        """
        for lo, hi in spans:
            gathered: set[str] | None = None
            for line in range(lo, hi + 1):
                codes = self.line_disabled.get(line)
                if codes is None:
                    continue
                if gathered is None:
                    gathered = set(codes)
                elif not codes or not gathered:
                    gathered = set()  # bare disable dominates
                else:
                    gathered |= codes
            if gathered is None:
                continue
            for line in range(lo, hi + 1):
                existing = self.line_disabled.get(line)
                if existing is None:
                    self.line_disabled[line] = set(gathered)
                elif not gathered or not existing:
                    existing.clear()
                else:
                    existing |= gathered

    def is_worker_def(self, def_line: int) -> bool:
        """Whether a ``def`` at ``def_line`` carries a worker marker.

        Legacy single-line probe; prefer :meth:`has_worker_marker` with
        :func:`repro.analysis.astutils.def_anchor_lines`, which also
        recognises markers around decorators and multi-line signatures.
        """
        return def_line in self.worker_lines \
            or (def_line - 1) in self.worker_lines

    def has_worker_marker(self, anchor_lines: Iterable[int]) -> bool:
        """Whether any of a def's anchor lines carries ``worker``."""
        return any(line in self.worker_lines for line in anchor_lines)

    def borrowed_params(self,
                        anchor_lines: Iterable[int]) -> set[str] | None:
        """Parameter names a def's ``borrowed`` marker names.

        Returns ``None`` when the def carries no marker, the empty set
        when the marker names no parameters (= all parameters are
        borrowed), the named subset otherwise.
        """
        found: set[str] | None = None
        for line in anchor_lines:
            names = self.borrowed_lines.get(line)
            if names is None:
                continue
            if not names:
                return set()
            found = (found or set()) | names
        return found

    def is_returns_borrowed(self, anchor_lines: Iterable[int]) -> bool:
        """Whether a def's anchor lines carry ``returns-borrowed``."""
        return any(line in self.returns_borrowed_lines
                   for line in anchor_lines)

    def forced_ownership(self, line: int) -> str | None:
        """``"owned"``/``"borrowed"`` assertion on an assignment line."""
        if line in self.owned_lines:
            return "owned"
        if line in self.borrowed_lines:
            return "borrowed"
        return None


def _split_codes(text: str) -> set[str]:
    return {code.strip() for code in text.split(",") if code.strip()}


def parse_pragmas(source: str) -> FilePragmas:
    """Scan ``source`` for parlint pragmas."""
    pragmas = FilePragmas()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        body = match.group("body")
        # Strip the justification: everything after ` -- `.
        body = body.split(" -- ", 1)[0].strip()
        for directive in body.split():
            name, _, value = directive.partition("=")
            if name == "skip-file":
                pragmas.skip_file = True
            elif name == "disable":
                codes = _split_codes(value)
                existing = pragmas.line_disabled.setdefault(lineno, codes)
                if existing is not codes:
                    if not codes or not existing:
                        existing.clear()  # no codes = waive everything
                    else:
                        existing.update(codes)
            elif name == "disable-file":
                pragmas.file_disabled.update(_split_codes(value))
            elif name == "hot-path":
                pragmas.hot_path = True
            elif name == "worker":
                pragmas.worker_lines.add(lineno)
            elif name == "borrowed":
                names = _split_codes(value)
                existing = pragmas.borrowed_lines.setdefault(lineno, names)
                if existing is not names:
                    if not names or not existing:
                        existing.clear()  # bare marker = all params
                    else:
                        existing.update(names)
            elif name == "returns-borrowed":
                pragmas.returns_borrowed_lines.add(lineno)
            elif name == "owned":
                pragmas.owned_lines.add(lineno)
            elif name == "module" and value:
                pragmas.module_override = value
    return pragmas
