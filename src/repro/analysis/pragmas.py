"""Parlint pragma comments: waivers and in-source markers.

Pragmas are ordinary ``#`` comments beginning with ``parlint:``.  An
optional justification follows `` -- `` and is encouraged for every
waiver (the repo convention is that a waiver without a reason does not
survive review).

Waivers
-------
``# parlint: disable=PPR401``
    Waive the listed codes (comma-separated) for diagnostics anchored to
    this physical line.  ``disable`` with no codes waives everything on
    the line.
``# parlint: disable-file=PPR401,PPR303``
    Waive the listed codes for the whole file.
``# parlint: skip-file``
    Exclude the file from analysis entirely.

Markers
-------
``# parlint: hot-path``
    Marks the module as performance-critical: the hot-path checker flags
    every explicit Python loop in it (PPR401) unless waived.
``# parlint: worker``
    On (or directly above) a ``def``: the function is shipped to worker
    processes, so the multiprocess-safety checker audits its body.
``# parlint: module=repro.core.example``
    Overrides the dotted module name inferred from the file path — used
    by the self-test corpus to exercise package-layering rules on files
    that live outside ``src/``.

Pragmas are extracted with a line-based scan, not the tokenizer; a
pragma-shaped string inside a string literal would be honoured.  This is
the usual linter trade-off (flake8's ``noqa`` behaves the same way) and
keeps the scanner trivially robust to files that do not tokenize.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["FilePragmas", "parse_pragmas"]

_PRAGMA = re.compile(r"#\s*parlint:\s*(?P<body>[^#]*)")


@dataclass
class FilePragmas:
    """All pragma state of one source file."""

    #: ``skip-file`` was present.
    skip_file: bool = False
    #: Codes waived for the whole file (``disable-file=``).
    file_disabled: set[str] = field(default_factory=set)
    #: Line -> codes waived on that line; an empty set waives all codes.
    line_disabled: dict[int, set[str]] = field(default_factory=dict)
    #: Module is marked ``hot-path``.
    hot_path: bool = False
    #: Lines carrying a ``worker`` marker.
    worker_lines: set[int] = field(default_factory=set)
    #: Explicit ``module=`` override, if any.
    module_override: str | None = None

    def is_waived(self, code: str, line: int) -> bool:
        """Whether a diagnostic ``code`` anchored at ``line`` is waived."""
        if self.skip_file or code in self.file_disabled:
            return True
        codes = self.line_disabled.get(line)
        if codes is None:
            return False
        return not codes or code in codes

    def is_worker_def(self, def_line: int) -> bool:
        """Whether a ``def`` at ``def_line`` carries a worker marker.

        The marker may trail the ``def`` line itself or sit on the line
        directly above it (above any decorators is *not* recognised —
        keep the marker adjacent to the ``def``).
        """
        return def_line in self.worker_lines \
            or (def_line - 1) in self.worker_lines


def _split_codes(text: str) -> set[str]:
    return {code.strip() for code in text.split(",") if code.strip()}


def parse_pragmas(source: str) -> FilePragmas:
    """Scan ``source`` for parlint pragmas."""
    pragmas = FilePragmas()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        body = match.group("body")
        # Strip the justification: everything after ` -- `.
        body = body.split(" -- ", 1)[0].strip()
        for directive in body.split():
            name, _, value = directive.partition("=")
            if name == "skip-file":
                pragmas.skip_file = True
            elif name == "disable":
                codes = _split_codes(value)
                existing = pragmas.line_disabled.setdefault(lineno, codes)
                if existing is not codes:
                    if not codes or not existing:
                        existing.clear()  # no codes = waive everything
                    else:
                        existing.update(codes)
            elif name == "disable-file":
                pragmas.file_disabled.update(_split_codes(value))
            elif name == "hot-path":
                pragmas.hot_path = True
            elif name == "worker":
                pragmas.worker_lines.add(lineno)
            elif name == "module" and value:
                pragmas.module_override = value
    return pragmas
