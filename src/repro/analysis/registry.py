"""The checker registry.

A checker is a class with a ``name``, a table of diagnostic ``codes`` it
may emit, and a ``check(module)`` method returning diagnostics for one
:class:`~repro.analysis.driver.ModuleInfo`.  Checkers register
themselves with the :func:`register` decorator; the driver instantiates
every registered checker once per run and applies each to every file.

Checkers must be pure per file: no state may leak between ``check``
calls (the driver is free to reorder files), and a checker must not
modify the module it inspects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.analysis.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.driver import ModuleInfo

__all__ = ["Checker", "register", "all_checkers", "all_codes"]


class Checker:
    """Base class for parlint checkers."""

    #: Short identifier, e.g. ``stage-contract``.
    name: str = ""
    #: Code -> one-line summary for every diagnostic the checker emits.
    codes: dict[str, str] = {}

    def check(self, module: "ModuleInfo") -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diagnostic(self, module: "ModuleInfo", line: int, code: str,
                   message: str) -> Diagnostic:
        """Build a diagnostic anchored in ``module`` with this checker."""
        if code not in self.codes:
            raise ValueError(f"checker {self.name!r} emitted "
                             f"undeclared code {code}")
        return Diagnostic(path=str(module.path), line=line, code=code,
                          message=message, checker=self.name)


_REGISTRY: list[type[Checker]] = []


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} needs a non-empty name")
    if not cls.codes:
        raise ValueError(f"{cls.__name__} declares no codes")
    for registered in _REGISTRY:
        overlap = registered.codes.keys() & cls.codes.keys()
        if overlap:
            raise ValueError(f"codes {sorted(overlap)} already "
                             f"registered by {registered.name!r}")
    _REGISTRY.append(cls)
    return cls


def all_checkers() -> list[Checker]:
    """Fresh instances of every registered checker, in registration order."""
    # Importing the package that defines the built-in checkers populates
    # the registry on first use.
    import repro.analysis.checkers  # noqa: F401  (import for side effect)
    return [cls() for cls in _REGISTRY]


def all_codes() -> dict[str, str]:
    """Code -> summary over all registered checkers (sorted by code)."""
    import repro.analysis.checkers  # noqa: F401  (import for side effect)
    merged: dict[str, str] = {}
    for cls in _REGISTRY:
        merged.update(cls.codes)
    return dict(sorted(merged.items()))
