"""Diagnostics: what parlint reports and how it is rendered.

A :class:`Diagnostic` is one finding of one checker at one source
location.  The human rendering is the conventional one-line form every
editor understands::

    src/repro/core/parser.py:77: PPR503 repro.core must not import repro.exec

The JSON rendering (``parparaw lint --format json``) is a stable
machine-readable envelope for CI annotation tooling.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable

__all__ = ["Diagnostic", "render_text", "render_json", "render_github"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a checker code anchored to a file and line."""

    #: Path of the offending file (as given to the driver).
    path: str
    #: 1-based source line the finding is anchored to.
    line: int
    #: Checker code, e.g. ``PPR401`` (see ``docs/PARLINT.md``).
    code: str
    #: Human-readable description of the violation.
    message: str
    #: Name of the checker that produced the finding.
    checker: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """The human rendering: one sorted ``path:line: CODE message`` per line."""
    return "\n".join(d.format() for d in sorted(diagnostics))


def _github_escape(text: str) -> str:
    """Escape message data for a workflow command (GitHub's own rules)."""
    return (text.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A"))


def render_github(diagnostics: Iterable[Diagnostic]) -> str:
    """GitHub Actions workflow-command rendering.

    One ``::error file=…,line=…`` annotation per finding — emitted on a
    workflow runner's stdout, these attach to the offending lines of the
    PR diff (``parparaw lint --format github``).
    """
    return "\n".join(
        f"::error file={d.path},line={d.line},"
        f"title=parlint {d.code}::{_github_escape(f'{d.code} {d.message}')}"
        for d in sorted(diagnostics))


def render_json(diagnostics: Iterable[Diagnostic], *,
                files_checked: int) -> str:
    """The machine rendering: a stable JSON envelope."""
    items = [asdict(d) for d in sorted(diagnostics)]
    return json.dumps({
        "files_checked": files_checked,
        "diagnostic_count": len(items),
        "diagnostics": items,
    }, indent=2)
