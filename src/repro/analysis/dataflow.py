"""Intraprocedural buffer-ownership dataflow: aliases, mutations, escapes.

PR 6 made the hot path zero-copy end-to-end: string columns are
``np.shares_memory`` views into the partition's CSS, fixed-width columns
alias the conversion output buffer, and ``slice_buffers`` returns pure
views.  The price of that layout is an aliasing discipline — one in-place
write through any view silently corrupts every sibling column — and the
discipline is exactly what this module proves.

The analysis is intraprocedural and name-based.  For every function it
tracks which local names are **borrowed** — aliases of a shared buffer
the function does not own — and emits an event stream the two dataflow
checkers (:mod:`repro.analysis.checkers.buffer_mutation`,
:mod:`repro.analysis.checkers.buffer_escape`) turn into PPR6xx
diagnostics.

Borrows enter a function through

* calls to registered view-returning functions (:data:`BORROW_CALLS` —
  ``slice_buffers``, ``take_buffers``, ``column_view``,
  ``np.frombuffer``, …) or to same-module functions marked
  ``# parlint: returns-borrowed``;
* reads of registered buffer attributes (:data:`BORROWED_ATTRS` —
  ``.values``, ``.offsets``, ``.validity``, ``.data``, ``.css``,
  ``.buf``);
* parameters annotated ``# parlint: borrowed[=names]``;
* ``np.ndarray(..., buffer=…)`` / ``memoryview(...)`` constructions.

and propagate through plain assignment, basic (slice-only) subscripting
— NumPy's view rule — registered view calls (``.view()``, ``reshape``,
``ravel``, ``np.asarray``, …) and view attributes (``.T``, ``.flags``,
…).  Fancy indexing, ``.copy()``, ``np.concatenate`` and friends
*launder* a borrow: their results are fresh owned buffers.

The events:

======================  =================================================
``subscript-store``      ``view[i] = x`` / ``view[a:b] = x``
``attribute-store``      assignment through a borrowed object
                         (``view.flags.writeable = True``, …)
``augassign``            ``view += x`` and friends (in-place ufuncs)
``inplace-method``       registered mutating ndarray method
                         (:data:`INPLACE_METHODS`, ``byteswap`` with
                         ``inplace=True``, ``setflags`` enabling write)
``out-kwarg``            borrowed array passed as an ``out=`` target
``return`` / ``yield``   borrowed view escapes a function not marked
                         ``returns-borrowed``
``closure``              nested function/lambda captures a borrowed name
``store-escape``         borrowed view stored into an object attribute
                         that outlives the frame
======================  =================================================

The pass iterates to a fixpoint over the borrow set (so loop-carried
aliases are seen), then replays once to collect events.  It is
deliberately conservative *and* deliberately shallow: ownership that
crosses function boundaries travels via the ``borrowed`` /
``returns-borrowed`` pragma vocabulary, keeping every verdict local and
explainable.  Runtime cross-validation comes from
:mod:`repro.columnar.guard`, which flips ``writeable = False`` on every
zero-copy buffer so the parity suites execute what this pass proves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.astutils import def_anchor_lines, dotted_name

__all__ = [
    "BORROW_CALLS",
    "BORROWED_ATTRS",
    "INPLACE_METHODS",
    "OWNING_CALLS",
    "VIEW_ATTRS",
    "VIEW_CALLS",
    "DataflowEvent",
    "FunctionOwnership",
    "analyse_module",
]

#: Calls whose result is always a borrowed view of a shared buffer,
#: matched on the last dotted segment (``ops.slice_buffers`` and a bare
#: ``slice_buffers`` alike).
BORROW_CALLS: frozenset[str] = frozenset({
    "slice_buffers", "take_buffers", "column_view", "column_css",
    "column_record_tags", "column_fields", "frombuffer", "memoryview",
    "as_readonly",
})

#: Calls that *propagate* a borrow from their receiver / first argument
#: (NumPy view-returning operations).
VIEW_CALLS: frozenset[str] = frozenset({
    "view", "reshape", "ravel", "squeeze", "transpose", "swapaxes",
    "asarray", "ascontiguousarray", "atleast_1d", "broadcast_to",
})

#: Calls that launder a borrow: the result is a fresh owned buffer.
OWNING_CALLS: frozenset[str] = frozenset({
    "copy", "astype", "tolist", "tobytes", "array", "concatenate",
    "empty", "zeros", "ones", "arange", "repeat", "packbits",
    "unpackbits", "pack_validity", "unpack_validity", "cumsum",
    "flatnonzero", "where", "bincount",
})

#: Attribute reads that always yield a borrowed buffer view: the Arrow
#: triple's buffers and the shared-memory handle's raw buffer.
BORROWED_ATTRS: frozenset[str] = frozenset({
    "values", "offsets", "validity", "data", "buffers", "css", "buf",
})

#: Attribute reads that propagate a borrow from their base object.
VIEW_ATTRS: frozenset[str] = frozenset({
    "T", "flat", "real", "imag", "flags", "base",
})

#: ndarray methods that mutate their receiver in place.  ``byteswap``
#: and ``setflags`` are handled separately (mutating only for certain
#: keyword arguments).
INPLACE_METHODS: frozenset[str] = frozenset({
    "sort", "fill", "put", "partition", "itemset", "setfield", "resize",
})


@dataclass(frozen=True)
class DataflowEvent:
    """One borrowed-alias hazard found by the ownership pass."""

    #: Event kind (see the module docstring's table).
    kind: str
    #: The borrowed name (or expression description) involved.
    name: str
    #: 1-based source line to anchor the diagnostic to.
    line: int
    #: Name of the function the event occurred in.
    function: str
    #: Where the borrow came from (origin description).
    origin: str

    @property
    def is_mutation(self) -> bool:
        return self.kind in ("subscript-store", "attribute-store",
                             "augassign", "inplace-method", "out-kwarg")

    @property
    def is_escape(self) -> bool:
        return self.kind in ("return", "yield", "closure", "store-escape")


def _last_segment(node: ast.AST) -> str | None:
    """Last dotted segment of a callable expression, if resolvable."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_basic_index(index: ast.AST) -> bool:
    """Whether a subscript is NumPy *basic* indexing (yields a view).

    Slices, and tuples of slices/constants/``None``/``...``, are basic;
    anything carrying an index array (a ``Name``, call, list, …) is
    fancy indexing and produces an owned copy.
    """
    if isinstance(index, ast.Slice):
        return True
    if isinstance(index, ast.Tuple):
        return all(isinstance(e, (ast.Slice, ast.Constant))
                   or (isinstance(e, ast.UnaryOp)
                       and isinstance(e.operand, ast.Constant))
                   for e in index.elts)
    return False


def _constant_false(node: ast.AST | None) -> bool:
    return isinstance(node, ast.Constant) and not node.value


class FunctionOwnership:
    """The ownership pass over one function.

    Two phases: fixpoint iteration growing the borrow set (so a name
    borrowed late in a loop body is borrowed on the next pass over the
    loop head), then one replay emitting :class:`DataflowEvent`s.
    """

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef,
                 pragmas, returns_borrowed_funcs: frozenset[str]):
        self.func = func
        self.pragmas = pragmas
        self.returns_borrowed_funcs = returns_borrowed_funcs
        self.anchor_lines = def_anchor_lines(func)
        self.returns_borrowed = pragmas.is_returns_borrowed(
            self.anchor_lines)
        #: name -> origin description
        self.borrowed: dict[str, str] = {}
        self.events: list[DataflowEvent] = []
        self._collect = False

    # -- entry point -------------------------------------------------------

    def run(self) -> list[DataflowEvent]:
        self._seed_parameters()
        # Fixpoint: the borrow set only grows, so |locals| passes bound it.
        for _ in range(len(self.func.body) + 2):
            before = set(self.borrowed)
            self._walk_body()
            if set(self.borrowed) == before:
                break
        self._collect = True
        self._walk_body()
        # Loop bodies are walked twice (to model loop-carried borrows)
        # and tuple out= targets may repeat a name: dedupe events.
        seen: set[tuple] = set()
        unique: list[DataflowEvent] = []
        for event in self.events:
            key = (event.kind, event.name, event.line)
            if key not in seen:
                seen.add(key)
                unique.append(event)
        return unique

    def _seed_parameters(self) -> None:
        marked = self.pragmas.borrowed_params(self.anchor_lines)
        if marked is None:
            return
        args = self.func.args
        names = [a.arg for a in (args.posonlyargs + args.args
                                 + args.kwonlyargs)]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        for name in names:
            if not marked or name in marked:
                self.borrowed[name] = f"parameter {name!r} marked borrowed"

    # -- borrow lattice ----------------------------------------------------

    def origin_of(self, expr: ast.AST) -> str | None:
        """Origin description when ``expr`` evaluates to a borrowed view."""
        if isinstance(expr, ast.Name):
            return self.borrowed.get(expr.id)
        if isinstance(expr, ast.Subscript):
            if _is_basic_index(expr.slice):
                return self.origin_of(expr.value)
            return None  # fancy indexing gathers into an owned buffer
        if isinstance(expr, ast.Attribute):
            if expr.attr in BORROWED_ATTRS:
                base = dotted_name(expr.value) or "<expr>"
                return f"buffer attribute {base}.{expr.attr}"
            if expr.attr in VIEW_ATTRS:
                return self.origin_of(expr.value)
            return None
        if isinstance(expr, ast.Call):
            return self._call_origin(expr)
        if isinstance(expr, ast.IfExp):
            return self.origin_of(expr.body) or self.origin_of(expr.orelse)
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                origin = self.origin_of(value)
                if origin:
                    return origin
            return None
        if isinstance(expr, ast.NamedExpr):
            return self.origin_of(expr.value)
        if isinstance(expr, ast.Starred):
            return self.origin_of(expr.value)
        return None

    def _call_origin(self, call: ast.Call) -> str | None:
        name = _last_segment(call.func)
        if name is None:
            return None
        if name in OWNING_CALLS:
            return None
        if name in BORROW_CALLS or name in self.returns_borrowed_funcs:
            return f"view returned by {name}()"
        if name in VIEW_CALLS:
            # Method style (view.reshape(-1)): borrow flows from the
            # receiver.  Module style (np.asarray(view)): from the first
            # argument — ``np`` itself never carries a borrow, so trying
            # the attribute base first is safe for both.
            if isinstance(call.func, ast.Attribute):
                origin = self.origin_of(call.func.value)
                if origin:
                    return origin
            if call.args:
                return self.origin_of(call.args[0])
            return None
        if name == "ndarray" \
                and any(kw.arg == "buffer" for kw in call.keywords):
            return "ndarray constructed over a foreign buffer"
        return None

    # -- traversal ---------------------------------------------------------

    def _walk_body(self) -> None:
        for stmt in self.func.body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            self._check_closure(stmt)
            return
        # Hazards inside expressions (in-place methods, out=, lambda
        # captures) can occur in any statement kind; scan every call and
        # lambda not in a deeper nested scope.
        for call in self._calls_in(stmt):
            self._check_call(call)
        for lam in self._lambdas_in(stmt):
            self._check_closure(lam)
        if isinstance(stmt, ast.Assign):
            self._visit_assign(stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind_target(stmt.target, stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.AugAssign):
            self._visit_augassign(stmt)
        elif isinstance(stmt, ast.Return):
            self._check_escape(stmt.value, stmt.lineno, "return")
        elif isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, ast.Yield):
                self._check_escape(value.value, stmt.lineno, "yield")
            elif isinstance(value, ast.YieldFrom):
                self._check_escape(value.value, stmt.lineno, "yield")
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_target(stmt.target, None, stmt.lineno, clear=True)
            # Twice: the second walk sees borrows established at the end
            # of the first, modelling loop-carried aliases.
            for _ in range(2):
                for sub in stmt.body:
                    self._visit_stmt(sub)
            for sub in stmt.orelse:
                self._visit_stmt(sub)
        elif isinstance(stmt, ast.While):
            for _ in range(2):
                for sub in stmt.body:
                    self._visit_stmt(sub)
            for sub in stmt.orelse:
                self._visit_stmt(sub)
        elif isinstance(stmt, ast.If):
            for sub in stmt.body + stmt.orelse:
                self._visit_stmt(sub)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars,
                                      item.context_expr, stmt.lineno)
            for sub in stmt.body:
                self._visit_stmt(sub)
        elif isinstance(stmt, ast.Try):
            for sub in (stmt.body + stmt.orelse + stmt.finalbody
                        + [s for h in stmt.handlers for s in h.body]):
                self._visit_stmt(sub)
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                self._visit_stmt(sub)

    def _calls_in(self, stmt: ast.stmt):
        """Every Call in ``stmt`` that is not inside a nested scope."""
        stack: list[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            if node is not stmt and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def _lambdas_in(self, stmt: ast.stmt):
        """Outermost lambdas in ``stmt`` (not inside nested defs)."""
        stack: list[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            if node is not stmt and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Lambda):
                yield node
                continue
            stack.extend(ast.iter_child_nodes(node))

    # -- binding -----------------------------------------------------------

    def _visit_assign(self, stmt: ast.Assign) -> None:
        for target in stmt.targets:
            if isinstance(target, ast.Subscript):
                self._check_subscript_store(target, stmt)
            elif isinstance(target, ast.Attribute):
                self._check_attribute_store(target, stmt)
            else:
                self._bind_target(target, stmt.value, stmt.lineno)

    def _bind_target(self, target: ast.AST, value: ast.AST | None,
                     line: int, clear: bool = False) -> None:
        forced = self.pragmas.forced_ownership(line)
        if isinstance(target, ast.Name):
            if clear or value is None:
                origin = None
            else:
                origin = self.origin_of(value)
            if forced == "owned":
                origin = None
            elif forced == "borrowed":
                origin = origin or "asserted borrowed by pragma"
            if origin:
                self.borrowed[target.id] = origin
            else:
                self.borrowed.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) \
                    and len(value.elts) == len(target.elts):
                for sub_t, sub_v in zip(target.elts, value.elts):
                    self._bind_target(sub_t, sub_v, line)
                return
            # Unpacking an opaque value: a borrow-source call taints all
            # targets (e.g. ``values, offsets = part.column_view(c)``).
            origin = None if (clear or value is None) \
                else self.origin_of(value)
            if forced == "owned":
                origin = None
            for sub in target.elts:
                if isinstance(sub, ast.Name):
                    if origin:
                        self.borrowed[sub.id] = origin
                    else:
                        self.borrowed.pop(sub.id, None)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, value, line, clear=clear)

    def _visit_augassign(self, stmt: ast.AugAssign) -> None:
        target = stmt.target
        if isinstance(target, ast.Name):
            origin = self.borrowed.get(target.id)
            if origin:
                self._emit("augassign", target.id, stmt.lineno, origin)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            origin = self.origin_of(target.value)
            if origin:
                self._emit("augassign",
                           dotted_name(target.value) or "<expr>",
                           stmt.lineno, origin)

    # -- hazards -----------------------------------------------------------

    def _emit(self, kind: str, name: str, line: int, origin: str) -> None:
        if self._collect:
            self.events.append(DataflowEvent(
                kind=kind, name=name, line=line,
                function=self.func.name, origin=origin))

    def _check_subscript_store(self, target: ast.Subscript,
                               stmt: ast.Assign) -> None:
        origin = self.origin_of(target.value)
        if origin:
            self._emit("subscript-store",
                       dotted_name(target.value) or "<expr>",
                       target.lineno, origin)

    def _check_attribute_store(self, target: ast.Attribute,
                               stmt: ast.Assign) -> None:
        origin = self.origin_of(target.value)
        if origin:
            # Writing *through* a borrowed object (x.flags.writeable = …).
            self._emit("attribute-store",
                       dotted_name(target.value) or "<expr>",
                       target.lineno, origin)
            return
        value_origin = self.origin_of(stmt.value)
        if value_origin:
            # Storing a borrowed view into an outliving object.
            self._emit("store-escape",
                       dotted_name(target) or "<attribute>",
                       target.lineno, value_origin)

    def _check_call(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            receiver_origin = self.origin_of(func.value)
            if receiver_origin:
                if func.attr in INPLACE_METHODS:
                    self._emit("inplace-method",
                               f"{dotted_name(func.value) or '<expr>'}"
                               f".{func.attr}()",
                               call.lineno, receiver_origin)
                elif func.attr == "byteswap":
                    inplace = next((kw.value for kw in call.keywords
                                    if kw.arg == "inplace"),
                                   call.args[0] if call.args else None)
                    if inplace is not None \
                            and not _constant_false(inplace):
                        self._emit("inplace-method",
                                   f"{dotted_name(func.value) or '<expr>'}"
                                   f".byteswap(inplace=…)",
                                   call.lineno, receiver_origin)
                elif func.attr == "setflags":
                    write = next((kw.value for kw in call.keywords
                                  if kw.arg == "write"), None)
                    if write is not None and not _constant_false(write):
                        self._emit("inplace-method",
                                   f"{dotted_name(func.value) or '<expr>'}"
                                   f".setflags(write=…)",
                                   call.lineno, receiver_origin)
        for kw in call.keywords:
            if kw.arg != "out":
                continue
            targets = kw.value.elts \
                if isinstance(kw.value, ast.Tuple) else [kw.value]
            for out_target in targets:
                origin = self.origin_of(out_target)
                if origin:
                    self._emit("out-kwarg",
                               dotted_name(out_target) or "<expr>",
                               kw.value.lineno, origin)

    def _check_escape(self, value: ast.AST | None, line: int,
                      kind: str) -> None:
        if value is None or self.returns_borrowed:
            return
        candidates = value.elts \
            if isinstance(value, (ast.Tuple, ast.List)) else [value]
        for expr in candidates:
            origin = self.origin_of(expr)
            if origin:
                self._emit(kind, dotted_name(expr) or "<expr>",
                           line, origin)
                return

    def _check_closure(self, nested) -> None:
        if not self.borrowed:
            return
        bound: set[str] = set()
        if not isinstance(nested, ast.Lambda):
            for node in ast.walk(nested):
                if isinstance(node, ast.Name) \
                        and isinstance(node.ctx, (ast.Store, ast.Del)):
                    bound.add(node.id)
        args = nested.args
        bound.update(a.arg for a in (args.posonlyargs + args.args
                                     + args.kwonlyargs))
        body = nested.body if isinstance(nested.body, list) \
            else [nested.body]
        for node in [n for b in body for n in ast.walk(b)]:
            if isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Load) \
                    and node.id in self.borrowed \
                    and node.id not in bound:
                label = getattr(nested, "name", "<lambda>")
                self._emit("closure", node.id, nested.lineno,
                           self.borrowed[node.id]
                           + f" (captured by {label})")
                return


def _functions_in(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def analyse_module(module) -> list[DataflowEvent]:
    """Run the ownership pass over every function of one module."""
    returns_borrowed = frozenset(
        func.name for func in _functions_in(module.tree)
        if module.pragmas.is_returns_borrowed(def_anchor_lines(func)))
    events: list[DataflowEvent] = []
    for func in _functions_in(module.tree):
        analysis = FunctionOwnership(func, module.pragmas,
                                     returns_borrowed)
        events.extend(analysis.run())
    return events
