"""Software implementations of the GPU bit intrinsics the paper relies on.

MFIRA (paper §4.5) is built on two PTX intrinsics that cost only two clock
cycles on recent microarchitectures:

* **BFI** (bit-field insert) — deposit the low ``length`` bits of one
  register into another at an arbitrary bit offset;
* **BFE** (bit-field extract) — extract ``length`` bits from an arbitrary
  offset.

SWAR symbol matching (Table 2) additionally uses **bfind** (position of the
most significant set bit; ``0xFFFFFFFF`` when none) and **popc**.

All functions operate on 32-bit unsigned semantics, matching the PTX
definitions, and clamp offset/length the way the hardware does (reads
outside the register yield zero bits; writes outside are dropped).
"""

from __future__ import annotations

__all__ = ["bfi", "bfe", "bfind", "popc", "brev", "NOT_FOUND"]

_U32 = 0xFFFFFFFF
#: Value ``bfind`` returns when no bit is set (matches PTX).
NOT_FOUND = 0xFFFFFFFF


def _check_u32(value: int, name: str) -> int:
    if not 0 <= value <= _U32:
        raise ValueError(f"{name} must fit in 32 unsigned bits, got {value}")
    return value


def bfi(source: int, target: int, offset: int, length: int) -> int:
    """Bit-field insert (PTX ``bfi.b32``).

    Deposits the low ``length`` bits of ``source`` into ``target`` starting
    at bit ``offset``; all other bits of ``target`` are preserved.  Bits
    that would land beyond bit 31 are dropped, as on hardware.

    >>> hex(bfi(0b101, 0, 4, 3))
    '0x50'
    """
    _check_u32(source, "source")
    _check_u32(target, "target")
    if offset < 0 or length < 0:
        raise ValueError("offset and length must be non-negative")
    if offset >= 32 or length == 0:
        return target
    length = min(length, 32 - offset)
    mask = ((1 << length) - 1) << offset
    return (target & ~mask | ((source << offset) & mask)) & _U32


def bfe(source: int, offset: int, length: int) -> int:
    """Bit-field extract (PTX ``bfe.u32``).

    Returns ``length`` bits of ``source`` starting at bit ``offset``,
    right-aligned.  Bits beyond bit 31 read as zero.

    >>> bfe(0x50, 4, 3)
    5
    """
    _check_u32(source, "source")
    if offset < 0 or length < 0:
        raise ValueError("offset and length must be non-negative")
    if offset >= 32 or length == 0:
        return 0
    length = min(length, 32 - offset)
    return (source >> offset) & ((1 << length) - 1)


def bfind(value: int) -> int:
    """Position of the most significant set bit (PTX ``bfind.u32``).

    Returns :data:`NOT_FOUND` (``0xFFFFFFFF``) when ``value`` is zero,
    which the SWAR matcher exploits: shifting it right by three gives the
    sentinel ``0x1FFFFFFF`` that loses every ``min`` against a real match
    index (paper Table 2).

    >>> bfind(0b1000)
    3
    >>> hex(bfind(0))
    '0xffffffff'
    """
    _check_u32(value, "value")
    if value == 0:
        return NOT_FOUND
    return value.bit_length() - 1


def popc(value: int) -> int:
    """Population count (PTX ``popc.b32``).

    >>> popc(0b1011)
    3
    """
    return _check_u32(value, "value").bit_count()


def brev(value: int) -> int:
    """Bit reverse (PTX ``brev.b32``) — handy for bitmap manipulations.

    >>> hex(brev(0x1))
    '0x80000000'
    """
    _check_u32(value, "value")
    result = 0
    for i in range(32):
        if value & (1 << i):
            result |= 1 << (31 - i)
    return result
