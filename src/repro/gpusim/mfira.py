"""Multi-fragment in-register array (MFIRA) — paper §4.5, Figure 8.

GPU threads cannot dynamically index into the register file, yet ParPaRaw
needs small dynamically-indexed arrays (the state-transition vector, symbol
tables, the transition table itself when small).  MFIRA works around the
constraint: although *registers* cannot be addressed dynamically, *bits
within a register* can, using the two-cycle BFI/BFE intrinsics.

An item of ``b`` bits is split into fragments; fragment ``f`` of item ``i``
lives in register ``f`` at bit offset ``i * k``, where ``k`` is the number
of bits a register devotes to each item's fragment:

* a register can host ``a = floor(32 / capacity)`` bits per item;
* ``k = 2 ** floor(log2(a))`` — rounded *down* to a power of two so the
  bit offset ``i * k`` is computed with a shift instead of an integer
  multiplication (paper Figure 8);
* the item needs ``ceil(b / k)`` fragments, i.e. that many registers.

The worked example of Figure 8 — capacity 10, 5-bit items — gives
``a = 3``, ``k = 2``, 3 fragments, and is reproduced verbatim in the tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import CapacityError
from repro.gpusim.bitfield import bfe, bfi
from repro.utils.bits import bits_required

__all__ = ["Mfira"]

_REGISTER_BITS = 32


class Mfira:
    """A bounded, dynamically indexable array packed into 32-bit registers.

    Parameters
    ----------
    capacity:
        Maximum number of items (fixed; this is an in-register structure).
    item_bits:
        Width of each item in bits (1..32).

    Notes
    -----
    The register images are plain Python ints constrained to 32 bits, and
    every access goes through :func:`~repro.gpusim.bitfield.bfi` /
    :func:`~repro.gpusim.bitfield.bfe`, so the data layout is exactly the
    physical view of Figure 8 (fragments of an item distributed across
    registers at offset ``index * fragment_bits``).
    """

    def __init__(self, capacity: int, item_bits: int):
        if capacity <= 0:
            raise CapacityError("capacity must be positive")
        if not 1 <= item_bits <= _REGISTER_BITS:
            raise CapacityError("item_bits must be in 1..32")
        available = _REGISTER_BITS // capacity
        if available < 1:
            raise CapacityError(
                f"capacity {capacity} exceeds one item-bit per register; "
                f"a 32-bit register cannot hold {capacity} fragments")
        self.capacity = capacity
        self.item_bits = item_bits
        #: Bits per item a register *could* devote.
        self.available_bits = available
        #: Bits per fragment actually used: the largest power of two
        #: <= available, so offsets are shifts (paper Figure 8).
        self.fragment_bits = 1 << (available.bit_length() - 1)
        #: log2(fragment_bits) — the shift amount replacing the multiply.
        self.fragment_shift = self.fragment_bits.bit_length() - 1
        #: Number of fragments (= registers) per item.
        self.num_fragments = -(-item_bits // self.fragment_bits)
        #: The simulated register file backing the array.
        self.registers: list[int] = [0] * self.num_fragments

    @classmethod
    def for_values(cls, capacity: int, num_values: int) -> "Mfira":
        """Size an MFIRA for items ranging over ``num_values`` values.

        This is how the parser sizes the state-transition vector: capacity
        = number of states, item width = bits required to encode a state.
        """
        return cls(capacity, bits_required(num_values))

    # -- element access -----------------------------------------------------

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.capacity:
            raise IndexError(
                f"index {index} out of range for capacity {self.capacity}")

    def get(self, index: int) -> int:
        """Read the item at ``index`` by reassembling its fragments."""
        self._check_index(index)
        offset = index << self.fragment_shift
        value = 0
        remaining = self.item_bits
        for fragment, register in enumerate(self.registers):
            take = min(self.fragment_bits, remaining)
            part = bfe(register, offset, take)
            value |= part << (fragment * self.fragment_bits)
            remaining -= take
            if remaining <= 0:
                break
        return value

    def set(self, index: int, value: int) -> None:
        """Write ``value`` at ``index`` by distributing its fragments."""
        self._check_index(index)
        if not 0 <= value < (1 << self.item_bits):
            raise ValueError(
                f"value {value} does not fit in {self.item_bits} bits")
        offset = index << self.fragment_shift
        remaining = self.item_bits
        for fragment in range(self.num_fragments):
            take = min(self.fragment_bits, remaining)
            part = (value >> (fragment * self.fragment_bits)) \
                & ((1 << take) - 1)
            self.registers[fragment] = bfi(part, self.registers[fragment],
                                           offset, take)
            remaining -= take
            if remaining <= 0:
                break

    # -- bulk helpers --------------------------------------------------------

    @classmethod
    def from_values(cls, values: Iterable[int], item_bits: int) -> "Mfira":
        """Pack an iterable of values into a new MFIRA."""
        values = list(values)
        array = cls(len(values), item_bits)
        for i, v in enumerate(values):
            array.set(i, v)
        return array

    def to_list(self) -> list[int]:
        """Materialise all items (for tests/inspection)."""
        return [self.get(i) for i in range(self.capacity)]

    def __len__(self) -> int:
        return self.capacity

    def __iter__(self) -> Iterator[int]:
        return iter(self.to_list())

    def __getitem__(self, index: int) -> int:
        return self.get(index)

    def __setitem__(self, index: int, value: int) -> None:
        self.set(index, value)

    def __repr__(self) -> str:
        return (f"Mfira(capacity={self.capacity}, item_bits={self.item_bits},"
                f" fragment_bits={self.fragment_bits},"
                f" fragments={self.num_fragments})")
