"""Branchless SWAR symbol matching (paper §4.5, Table 2).

During DFA simulation every thread must map each byte it reads to its
symbol group.  Rather than a 256-entry lookup table (which would not fit in
registers), the paper packs the handful of distinguished symbols into the
bytes of 32-bit *lookup registers* (LU-registers) and matches a read symbol
against four of them at a time:

1. replicate the read symbol into every byte of an ``s``-register;
2. XOR with each LU-register — matching bytes become zero;
3. apply Mycroft's 1987 null-byte mask
   ``H(x) = (x - 0x01010101) & ~x & 0x80808080`` — each zero byte's most
   significant bit is set;
4. ``bfind`` the most significant set bit and divide by 8 (shift right by
   3) — LU-registers without a match give ``0xFFFFFFFF >> 3 = 0x1FFFFFFF``;
5. take the minimum across LU-registers, then ``min`` with the catch-all
   group index, which also absorbs the no-match case.

Everything is arithmetic — no branches, so warp lanes never diverge.

:class:`SwarMatcher` implements the full scheme for an arbitrary DFA symbol
-group table and exposes the intermediate values so tests can replay the
paper's worked example bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dfa.automaton import Dfa
from repro.gpusim.bitfield import bfind

__all__ = ["mycroft_null_byte_mask", "SwarMatcher", "SwarTrace"]

_U32 = 0xFFFFFFFF


def mycroft_null_byte_mask(value: int) -> int:
    """Mycroft's null-byte detector ``H(x)`` for a 32-bit word.

    Sets the most significant bit of every byte of ``value`` that is zero;
    all other bits are clear for inputs whose bytes are either zero or have
    their own high bit clear (which holds for XOR-of-equal-ASCII inputs,
    the only way the matcher uses it).

    >>> hex(mycroft_null_byte_mask(0x25500000))
    '0x8080'
    """
    if not 0 <= value <= _U32:
        raise ValueError("value must fit in 32 unsigned bits")
    return ((value - 0x01010101) & ~value & 0x80808080) & _U32


@dataclass
class SwarTrace:
    """Intermediate values of one match, for inspection/tests (Table 2)."""

    symbol: int
    s_register: int
    xors: list[int]
    masks: list[int]
    indexes: list[int]
    matched_index: int


class SwarMatcher:
    """Branchless byte -> symbol-group matcher for a DFA.

    The matcher enumerates every byte that is *not* in the DFA's catch-all
    group, packs those bytes into LU-registers (four per register, zero
    padded), and records each packed byte's symbol group.  Matching follows
    the Table 2 recipe exactly.

    The scheme requires the distinguished symbols to occupy few registers —
    delimiter-separated formats distinguish only a handful of symbols — and
    the catch-all group to have the *highest* group index so the final
    ``min`` folds the no-match sentinel onto it.  The constructor verifies
    both conditions.
    """

    #: ``bfind`` miss sentinel shifted right by 3 (paper Table 2).
    NO_MATCH_INDEX = 0x1FFFFFFF

    def __init__(self, dfa: Dfa, max_registers: int = 8):
        groups = dfa.symbol_groups
        catch_all = int(groups.max())
        counts = np.bincount(groups, minlength=catch_all + 1)
        if counts[catch_all] < 2:
            raise ValueError(
                "SWAR matching expects a catch-all group covering the "
                "undistinguished byte values")
        distinguished = [b for b in range(256) if groups[b] != catch_all]
        num_registers = (len(distinguished) + 3) // 4
        if num_registers > max_registers:
            raise ValueError(
                f"{len(distinguished)} distinguished symbols need "
                f"{num_registers} LU-registers, budget is {max_registers}")
        self.catch_all_group = catch_all
        self._dfa = dfa
        #: Packed LU-registers; byte lane ``k`` of register ``r`` holds
        #: distinguished symbol ``4r + k`` (zero padded).
        self.lu_registers: list[int] = []
        #: ``group_table[r][k]`` is the symbol group of that lane.
        self.group_table: list[list[int]] = []
        for r in range(num_registers):
            packed = 0
            lanes: list[int] = []
            for k in range(4):
                idx = 4 * r + k
                if idx < len(distinguished):
                    byte = distinguished[idx]
                    packed |= byte << (8 * k)
                    lanes.append(int(groups[byte]))
                else:
                    # Padding lanes must never match a real symbol; byte 0
                    # could collide with a genuine NUL symbol, so redirect
                    # padding to the catch-all group just in case.
                    lanes.append(catch_all)
            self.lu_registers.append(packed)
            self.group_table.append(lanes)
        # NUL padding lanes in partially filled registers match symbol 0;
        # if NUL is itself distinguished it was packed explicitly, so a
        # padded lane matching 0 must map to the catch-all group (handled
        # above via lanes[]).

    # -- matching -----------------------------------------------------------

    def match_index(self, symbol: int, trace: bool = False
                    ) -> int | SwarTrace:
        """Return (register, lane) as a flat index, or the no-match fold.

        The flat index is ``4 * register + lane``; a miss returns the
        catch-all fold as described in Table 2.  With ``trace=True`` all
        intermediate registers are returned for inspection.
        """
        if not 0 <= symbol <= 0xFF:
            raise ValueError("symbol must be one byte")
        s_register = symbol * 0x01010101
        xors: list[int] = []
        masks: list[int] = []
        indexes: list[int] = []
        best = self.NO_MATCH_INDEX
        for r, lu in enumerate(self.lu_registers):
            x = lu ^ s_register
            xors.append(x)
            h = mycroft_null_byte_mask(x)
            masks.append(h)
            # Mycroft's mask can false-positive on an 0x01 byte directly
            # above a zero byte (the subtraction borrows through it), but
            # the *least significant* flagged byte is always a true zero —
            # so isolate the lowest set bit before bfind.  (`h & -h` is a
            # single-instruction idiom on GPUs too.)
            idx = bfind(h & -h & 0xFFFFFFFF) >> 3
            indexes.append(idx)
            candidate = idx if idx == self.NO_MATCH_INDEX else 4 * r + idx
            best = min(best, candidate)
        if trace:
            return SwarTrace(symbol=symbol, s_register=s_register,
                             xors=xors, masks=masks, indexes=indexes,
                             matched_index=best)
        return best

    def group_of(self, symbol: int) -> int:
        """Symbol group of one byte, via the SWAR path.

        Equivalent to ``dfa.group_of(symbol)``; the equivalence over all
        256 byte values is property tested.
        """
        idx = self.match_index(symbol)
        assert isinstance(idx, int)
        if idx == self.NO_MATCH_INDEX:
            return self.catch_all_group
        register, lane = divmod(idx, 4)
        group = self.group_table[register][lane]
        # A padded zero lane can spuriously match symbol 0; its group was
        # set to the catch-all, so the result is still correct.
        return group

    def groups_of(self, data: np.ndarray) -> np.ndarray:
        """Vectorised SWAR matching over a uint8 array.

        Implements steps 1-5 with NumPy uint32 arithmetic — the same
        operation per lane as the scalar path, element-wise over the whole
        input.  Used to cross-check the scalar matcher at scale.
        """
        if data.dtype != np.uint8:
            raise ValueError("expected a uint8 array")
        s = data.astype(np.uint32) * np.uint32(0x01010101)
        best = np.full(data.shape, self.NO_MATCH_INDEX, dtype=np.uint32)
        for r, lu in enumerate(self.lu_registers):
            x = np.uint32(lu) ^ s
            h = ((x - np.uint32(0x01010101)) & ~x
                 & np.uint32(0x80808080)).astype(np.uint32)
            # Isolate the lowest flagged byte (see the scalar path for the
            # borrow caveat): h & -h in two's complement.
            h = h & (~h + np.uint32(1))
            # Vectorised bfind: position of MSB via bit_length analogue.
            idx = np.full(data.shape, self.NO_MATCH_INDEX, dtype=np.uint32)
            nonzero = h != 0
            if np.any(nonzero):
                msb = np.zeros(data.shape, dtype=np.uint32)
                hv = h.copy()
                for shift in (16, 8, 4, 2, 1):
                    step = hv >= (np.uint32(1) << np.uint32(shift))
                    msb = np.where(step, msb + shift, msb)
                    hv = np.where(step, hv >> np.uint32(shift), hv)
                idx = np.where(nonzero, msb >> np.uint32(3), idx)
            candidate = np.where(idx == self.NO_MATCH_INDEX, idx,
                                 np.uint32(4 * r) + idx)
            best = np.minimum(best, candidate)
        # Translate flat indexes to groups through the lane table.
        flat_groups = np.array(
            [g for lanes in self.group_table for g in lanes],
            dtype=np.uint8)
        out = np.full(data.shape, self.catch_all_group, dtype=np.uint8)
        matched = best != self.NO_MATCH_INDEX
        out[matched] = flat_groups[best[matched]]
        return out
