"""Shared- and global-memory behaviour models.

Two memory effects shape the paper's measurements:

* **shared-memory bank conflicts** — Figure 9 shows small spikes for
  parsing and tagging at chunk sizes 32, 48 and 64 bytes, attributed to
  shared-memory bank conflicts and bad occupancy.  GPUs organise shared
  memory into 32 four-byte banks; when the per-thread stride (here, the
  chunk size) shares a large power-of-two factor with the bank count,
  multiple lanes of a warp hit the same bank and the accesses serialise.
  :class:`SharedMemoryModel` computes the conflict degree for a strided
  access pattern the standard way (distinct addresses per bank).

* **global-memory throughput** — most pipeline steps run at peak memory
  bandwidth (paper §4.1), so their cost is modelled as bytes-moved divided
  by effective bandwidth, with an efficiency factor for non-coalesced
  patterns.  :class:`GlobalMemoryModel` provides that conversion.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd

from repro.errors import SimulationError
from repro.gpusim.device import DeviceSpec

__all__ = ["SharedMemoryModel", "GlobalMemoryModel"]


@dataclass(frozen=True)
class SharedMemoryModel:
    """Bank-conflict model for strided shared-memory access."""

    num_banks: int = 32
    bank_width_bytes: int = 4

    def conflict_degree(self, stride_bytes: int,
                        warp_size: int = 32) -> int:
        """Worst-case serialisation factor for a warp's strided access.

        Lane ``l`` touches byte address ``l * stride_bytes``; the access
        serialises by the maximum number of lanes mapping to the same bank
        with distinct addresses.

        Strides that are a multiple of the bank width map lane ``l`` to
        word ``l * stride / 4``; the lanes then spread over
        ``num_banks / gcd(word_stride, num_banks)`` distinct banks and the
        access serialises by ``gcd(word_stride, num_banks)``.  Strides
        that are *not* word aligned (e.g. the paper's 31-byte chunks)
        spread lanes across all banks — conflict free, which is exactly
        why 31 outperforms 32 (Figure 9).

        >>> SharedMemoryModel().conflict_degree(31)
        1
        >>> SharedMemoryModel().conflict_degree(32)
        8
        >>> SharedMemoryModel().conflict_degree(64)
        16
        """
        if stride_bytes <= 0:
            raise SimulationError("stride must be positive")
        if stride_bytes % self.bank_width_bytes != 0:
            return 1
        word_stride = stride_bytes // self.bank_width_bytes
        return min(warp_size, gcd(word_stride, self.num_banks))

    def conflict_slowdown(self, stride_bytes: int,
                          warp_size: int = 32) -> float:
        """Multiplicative slowdown for shared-memory bound phases.

        Conflicts serialise only the shared-memory instructions, not the
        whole kernel, so the slowdown is damped: a degree-``d`` conflict
        costs ``1 + (d - 1) * weight`` with a fractional weight.
        """
        degree = self.conflict_degree(stride_bytes, warp_size)
        weight = 0.035  # fraction of kernel time in conflicted accesses
        return 1.0 + (degree - 1) * weight


@dataclass(frozen=True)
class GlobalMemoryModel:
    """Bytes-to-seconds conversion for bandwidth-bound steps."""

    device: DeviceSpec
    #: Achievable fraction of peak bandwidth for coalesced streams.
    coalesced_efficiency: float = 0.85
    #: Achievable fraction for scattered access (radix-sort scatter);
    #: the sort's shared-memory staging recovers much of the locality.
    scattered_efficiency: float = 0.70

    def stream_time(self, bytes_moved: float) -> float:
        """Seconds to stream ``bytes_moved`` coalesced bytes."""
        if bytes_moved < 0:
            raise SimulationError("bytes_moved must be non-negative")
        return bytes_moved / (self.device.memory_bandwidth
                              * self.coalesced_efficiency)

    def scatter_time(self, bytes_moved: float) -> float:
        """Seconds to scatter ``bytes_moved`` bytes to random offsets."""
        if bytes_moved < 0:
            raise SimulationError("bytes_moved must be non-negative")
        return bytes_moved / (self.device.memory_bandwidth
                              * self.scattered_efficiency)
