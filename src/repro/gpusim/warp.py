"""Warp-level execution model (lockstep + divergence accounting).

GPUs execute threads in warps that share one instruction stream; threads
taking different branches serialise (paper §3.3 highlights this when
neighbouring threads convert different column types, and §4.5's SWAR
matcher exists to avoid divergent symbol comparisons).

:class:`WarpExecutionModel` estimates the divergence penalty of a kernel
from the distribution of code paths its threads take, which the cost model
uses to quantify the benefit of the columnar conversion order (all threads
of a warp convert the *same* column after partitioning) versus converting
in row order (neighbouring threads hit different types).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SimulationError

__all__ = ["WarpExecutionModel"]


@dataclass(frozen=True)
class WarpExecutionModel:
    """Divergence accounting over warps of ``warp_size`` lanes."""

    warp_size: int = 32

    def warp_serialisation(self, lane_paths: Sequence[int]) -> int:
        """Serialisation factor of one warp.

        ``lane_paths[l]`` identifies the code path lane ``l`` executes;
        the warp replays once per *distinct* path, so the factor is the
        number of distinct paths (1 = fully converged).

        >>> WarpExecutionModel().warp_serialisation([0, 0, 1, 1])
        2
        """
        if not lane_paths:
            raise SimulationError("a warp needs at least one lane")
        return len(set(lane_paths))

    def average_serialisation(self, thread_paths: Sequence[int]) -> float:
        """Mean serialisation factor over all warps of a launch.

        Threads are assigned to warps in index order, matching the
        contiguous thread-id to data mapping of the pipeline's kernels.
        """
        if len(thread_paths) == 0:
            return 1.0
        total = 0.0
        num_warps = 0
        for start in range(0, len(thread_paths), self.warp_size):
            warp = thread_paths[start:start + self.warp_size]
            total += self.warp_serialisation(warp)
            num_warps += 1
        return total / num_warps

    def divergence_penalty(self, path_mix: dict[int, float]) -> float:
        """Expected serialisation when each lane draws its path i.i.d.

        ``path_mix`` maps path id -> probability.  The expected number of
        distinct paths among ``warp_size`` lanes is
        ``sum_p 1 - (1 - prob_p) ** warp_size``.

        With a single path the penalty is 1.0; with a uniform mix over many
        paths it approaches the number of paths — the situation the
        partition-then-convert design avoids.
        """
        if not path_mix:
            raise SimulationError("path_mix must not be empty")
        total_prob = sum(path_mix.values())
        if not 0.999 <= total_prob <= 1.001:
            raise SimulationError("path probabilities must sum to 1")
        expected_distinct = sum(
            1.0 - (1.0 - p) ** self.warp_size
            for p in path_mix.values() if p > 0)
        return max(1.0, expected_distinct)
