"""Thread-level simulation of the phase-1 GPU kernel (§3.1 + §4.5).

The vectorised pipeline in :mod:`repro.core` computes state-transition
vectors with whole-array operations.  This module executes the same kernel
the way a *single CUDA thread* would, using exactly the machinery §4.5
describes:

* the thread's state-transition vector lives in an
  :class:`~repro.gpusim.mfira.Mfira` (dynamically indexed registers);
* each symbol is matched to its group with the branchless
  :class:`~repro.gpusim.swar.SwarMatcher`;
* the transition table itself is packed into MFIRAs (one per symbol
  group) when small enough, so a state transition is two BFE/BFI accesses.

It exists to demonstrate — and test — that the paper's register-level
design computes the very same STVs as the vectorised executor, and to
account for the register/instruction budget of a thread
(:class:`ThreadResources`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dfa.automaton import Dfa
from repro.errors import SimulationError
from repro.gpusim.mfira import Mfira
from repro.gpusim.swar import SwarMatcher
from repro.utils.bits import bits_required

__all__ = ["ThreadResources", "GpuThread", "simulate_block"]


@dataclass
class ThreadResources:
    """Register/instruction accounting of one simulated thread."""

    #: 32-bit registers backing the STV MFIRA.
    stv_registers: int = 0
    #: 32-bit registers backing the packed transition table.
    table_registers: int = 0
    #: LU-registers of the SWAR matcher.
    lu_registers: int = 0
    #: BFI/BFE invocations performed.
    bitfield_ops: int = 0
    #: SWAR matches performed.
    swar_matches: int = 0

    @property
    def total_registers(self) -> int:
        return self.stv_registers + self.table_registers \
            + self.lu_registers


class GpuThread:
    """One lightweight parsing thread with in-register context only.

    Parameters
    ----------
    dfa:
        The automaton.  Its per-group transition rows are packed into
        MFIRAs when the state count allows (<= 32 states); otherwise the
        construction fails — exactly the register-pressure constraint that
        motivates symbol-group compression (§4.5).
    """

    def __init__(self, dfa: Dfa):
        self.dfa = dfa
        num_states = dfa.num_states
        if num_states > 32:
            raise SimulationError(
                "a thread cannot hold more than 32 states in registers")
        self.matcher = SwarMatcher(dfa)
        state_bits = bits_required(num_states)

        # The state-transition vector: one slot per hypothetical start
        # state (Figure 3's per-thread DFA instances).
        self.stv = Mfira(capacity=num_states, item_bits=state_bits)
        for state in range(num_states):
            self.stv.set(state, state)

        # The transition table, one MFIRA row per symbol group (Table 1's
        # row-major layout: all transitions of a read symbol adjacent).
        self.table_rows: list[Mfira] = []
        for group in range(dfa.num_groups):
            row = Mfira(capacity=num_states, item_bits=state_bits)
            for state in range(num_states):
                row.set(state, int(dfa.transitions[group, state]))
            self.table_rows.append(row)

        self.resources = ThreadResources(
            stv_registers=self.stv.num_fragments,
            table_registers=sum(r.num_fragments for r in self.table_rows),
            lu_registers=len(self.matcher.lu_registers),
        )

    def consume(self, byte: int) -> None:
        """Advance all DFA instances by one symbol (the §3.1 inner loop)."""
        group = self.matcher.group_of(byte)
        self.resources.swar_matches += 1
        row = self.table_rows[group]
        for state in range(self.dfa.num_states):
            current = self.stv.get(state)
            self.stv.set(state, row.get(current))
            # one BFE for the STV read, one BFE for the table row, one
            # BFI for the STV write
            self.resources.bitfield_ops += 3

    def run(self, chunk: bytes | np.ndarray) -> tuple[int, ...]:
        """Process a chunk; return the resulting state-transition vector."""
        buf = np.frombuffer(bytes(chunk), dtype=np.uint8) \
            if not isinstance(chunk, np.ndarray) else chunk
        for byte in buf:
            self.consume(int(byte))
        return tuple(self.stv.to_list())


def simulate_block(dfa: Dfa, data: bytes,
                   chunk_size: int) -> tuple[list[tuple[int, ...]],
                                             ThreadResources]:
    """Run one thread per chunk over ``data``; return STVs + totals.

    The reference for the vectorised
    :func:`repro.core.context.compute_transition_vectors` (tested equal).
    """
    if chunk_size <= 0:
        raise SimulationError("chunk_size must be positive")
    vectors: list[tuple[int, ...]] = []
    totals = ThreadResources()
    for start in range(0, max(len(data), 1), chunk_size):
        thread = GpuThread(dfa)
        vectors.append(thread.run(data[start:start + chunk_size]))
        totals.stv_registers = thread.resources.stv_registers
        totals.table_registers = thread.resources.table_registers
        totals.lu_registers = thread.resources.lu_registers
        totals.bitfield_ops += thread.resources.bitfield_ops
        totals.swar_matches += thread.resources.swar_matches
    return vectors, totals
