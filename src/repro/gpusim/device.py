"""GPU device specifications.

The evaluation system of the paper hosts an NVIDIA Titan X (Pascal) with
12 GB device memory, 3 584 cores and a 1 417 MHz base clock (paper §5);
its PCIe 3.0 x16 link moves ≈11-12 GB/s per direction and supports
full-duplex transfers (§4.4).  :data:`TITAN_X_PASCAL` captures those
parameters; additional specs are provided for scaling experiments (the
"more cores keep helping" claim of §6 is exercised by swapping specs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["DeviceSpec", "TITAN_X_PASCAL", "GTX_1080", "V100"]

GiB = 1024 ** 3
MiB = 1024 ** 2


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one GPU.

    Attributes
    ----------
    name:
        Marketing name.
    num_sms:
        Streaming multiprocessors.
    cores_per_sm:
        CUDA cores per SM.
    clock_hz:
        Base clock.
    memory_bytes:
        Device memory capacity.
    memory_bandwidth:
        Peak device-memory bandwidth, bytes/second.
    shared_memory_per_sm:
        Addressable on-chip memory per SM, bytes (paper: "tens of KB").
    registers_per_sm:
        32-bit registers per SM.
    warp_size:
        Threads per warp executing in lock step.
    max_threads_per_sm:
        Resident-thread bound per SM (occupancy ceiling).
    kernel_launch_overhead:
        Seconds per kernel invocation (paper §5.1 estimates 5-10 µs).
    pcie_bandwidth:
        Effective PCIe bandwidth per direction, bytes/second; the bus is
        full duplex (§4.4).
    pcie_latency:
        Per-transfer fixed latency, seconds.
    """

    name: str
    num_sms: int
    cores_per_sm: int
    clock_hz: float
    memory_bytes: int
    memory_bandwidth: float
    shared_memory_per_sm: int
    registers_per_sm: int
    warp_size: int
    max_threads_per_sm: int
    kernel_launch_overhead: float
    pcie_bandwidth: float
    pcie_latency: float

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.cores_per_sm <= 0:
            raise SimulationError("device must have SMs and cores")
        if self.warp_size <= 0:
            raise SimulationError("warp size must be positive")

    @property
    def num_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def peak_ops_per_second(self) -> float:
        """One operation per core per clock — the scaling denominator."""
        return self.num_cores * self.clock_hz

    def scaled(self, core_factor: float) -> "DeviceSpec":
        """A hypothetical device with ``core_factor`` times the SMs.

        Memory bandwidth scales with the cores (HBM stacks per die), PCIe
        does not — which is exactly why the streaming experiments become
        PCIe-bound as the device grows (paper §6).
        """
        if core_factor <= 0:
            raise SimulationError("core_factor must be positive")
        sms = max(1, round(self.num_sms * core_factor))
        return DeviceSpec(
            name=f"{self.name} x{core_factor:g}",
            num_sms=sms,
            cores_per_sm=self.cores_per_sm,
            clock_hz=self.clock_hz,
            memory_bytes=self.memory_bytes,
            memory_bandwidth=self.memory_bandwidth * (sms / self.num_sms),
            shared_memory_per_sm=self.shared_memory_per_sm,
            registers_per_sm=self.registers_per_sm,
            warp_size=self.warp_size,
            max_threads_per_sm=self.max_threads_per_sm,
            kernel_launch_overhead=self.kernel_launch_overhead,
            pcie_bandwidth=self.pcie_bandwidth,
            pcie_latency=self.pcie_latency,
        )


#: The paper's evaluation GPU (§5).
TITAN_X_PASCAL = DeviceSpec(
    name="NVIDIA Titan X (Pascal)",
    num_sms=28,
    cores_per_sm=128,           # 3 584 cores total
    clock_hz=1_417e6,
    memory_bytes=12 * GiB,
    memory_bandwidth=480e9,     # GDDR5X, ~480 GB/s
    shared_memory_per_sm=96 * 1024,
    registers_per_sm=65_536,
    warp_size=32,
    max_threads_per_sm=2048,
    kernel_launch_overhead=7e-6,   # paper §5.1: "roughly 5 - 10 µs"
    pcie_bandwidth=11.8e9,         # PCIe 3.0 x16 effective
    pcie_latency=10e-6,
)

#: A smaller Pascal part, for scaling sweeps.
GTX_1080 = DeviceSpec(
    name="NVIDIA GTX 1080",
    num_sms=20,
    cores_per_sm=128,
    clock_hz=1_607e6,
    memory_bytes=8 * GiB,
    memory_bandwidth=320e9,
    shared_memory_per_sm=96 * 1024,
    registers_per_sm=65_536,
    warp_size=32,
    max_threads_per_sm=2048,
    kernel_launch_overhead=7e-6,
    pcie_bandwidth=11.8e9,
    pcie_latency=10e-6,
)

#: The 5 120-core part the introduction cites (paper §1).
V100 = DeviceSpec(
    name="NVIDIA Tesla V100",
    num_sms=80,
    cores_per_sm=64,
    clock_hz=1_370e6,
    memory_bytes=16 * GiB,
    memory_bandwidth=900e9,
    shared_memory_per_sm=96 * 1024,
    registers_per_sm=65_536,
    warp_size=32,
    max_threads_per_sm=2048,
    kernel_launch_overhead=7e-6,
    pcie_bandwidth=11.8e9,
    pcie_latency=10e-6,
)
