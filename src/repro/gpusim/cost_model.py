"""Calibrated per-step cost model of the ParPaRaw GPU pipeline.

The reproduction has no GPU, so the benchmark harness regenerates the
paper's figures from a model that converts *workload statistics* (input
size, chunk size, dataset shape, tagging mode) into per-step durations on a
:class:`~repro.gpusim.device.DeviceSpec`.  The model composes first
principles (bandwidth × bytes moved, cycles × work items, fixed launch
overheads, bank-conflict serialisation) with a handful of calibration
constants fitted to the paper's reported measurements:

* ≈14.2 GB/s peak on-GPU rate for the yelp dataset at 512 MB (paper §5.1,
  Figure 10) with the step mix of Figure 9a;
* type conversion ≈1/3 of total time for NYC taxi vs ≈20% for yelp
  (Figure 9), driven by the ~15x difference in fields per byte;
* ≈2.7 GB/s (yelp) and ≈2.1 GB/s (taxi) at 1 MB, dominated by the
  per-column kernel launches of the conversion step (§5.1);
* spikes at chunk sizes 32/48/64 from shared-memory bank conflicts, and a
  slow ramp below ~16 bytes from per-thread setup plus metadata volume
  (Figure 9);
* record-tagged mode slower than inline-terminated / vector-delimited
  because 4-byte record-tags multiply the bytes the tag, partition and
  convert steps move (Figure 11, §4.1).

The *absolute* numbers are the paper's by construction at the calibration
points; everything else (other chunk sizes, sizes, devices, datasets) is
prediction from the model's structure, which is what the benchmarks
compare shapes against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.gpusim.device import DeviceSpec, TITAN_X_PASCAL
from repro.gpusim.kernel import KernelLaunch, KernelModel
from repro.gpusim.memory import GlobalMemoryModel, SharedMemoryModel

__all__ = ["WorkloadStats", "StepCosts", "PipelineCostModel"]

MiB = 1024 ** 2


@dataclass(frozen=True)
class WorkloadStats:
    """Shape of one parsing workload, as the cost model sees it.

    Use :meth:`yelp_like` / :meth:`taxi_like` for the paper's datasets, or
    :meth:`from_result` to derive the statistics of an actual parse.
    """

    input_bytes: int
    chunk_size: int
    num_states: int
    num_columns: int
    num_records: int
    num_fields: int
    #: Fraction of fields requiring numeric/temporal conversion.
    numeric_field_fraction: float
    #: Bytes of record-tag moved per symbol: 4.0 for record-tagged mode,
    #: 0.0 for inline-terminated, 0.125 for vector-delimited (1 bit).
    record_tag_bytes: float = 4.0
    name: str = "workload"

    def __post_init__(self) -> None:
        if self.input_bytes < 0 or self.chunk_size <= 0:
            raise SimulationError("invalid workload geometry")
        if not 0.0 <= self.numeric_field_fraction <= 1.0:
            raise SimulationError("numeric_field_fraction must be in [0,1]")

    @property
    def num_chunks(self) -> int:
        return -(-self.input_bytes // self.chunk_size)

    @staticmethod
    def yelp_like(input_bytes: int, chunk_size: int = 31,
                  record_tag_bytes: float = 4.0) -> "WorkloadStats":
        """The yelp reviews dataset: 9 columns, 721.4 B/record (paper §5)."""
        records = max(1, round(input_bytes / 721.4))
        return WorkloadStats(
            input_bytes=input_bytes, chunk_size=chunk_size, num_states=6,
            num_columns=9, num_records=records, num_fields=records * 9,
            numeric_field_fraction=4 / 9,   # text-heavy
            record_tag_bytes=record_tag_bytes, name="yelp")

    @staticmethod
    def taxi_like(input_bytes: int, chunk_size: int = 31,
                  record_tag_bytes: float = 4.0) -> "WorkloadStats":
        """NYC taxi trips: 17 numeric/temporal columns, 88.3 B/record."""
        records = max(1, round(input_bytes / 88.3))
        return WorkloadStats(
            input_bytes=input_bytes, chunk_size=chunk_size, num_states=6,
            num_columns=17, num_records=records, num_fields=records * 17,
            numeric_field_fraction=1.0,
            record_tag_bytes=record_tag_bytes, name="taxi")

    @staticmethod
    def from_result(input_bytes: int, chunk_size: int, num_states: int,
                    num_columns: int, num_records: int,
                    numeric_columns: int,
                    record_tag_bytes: float = 4.0,
                    name: str = "measured") -> "WorkloadStats":
        """Statistics of an actual parse (see ``ParseResult.stats()``)."""
        fields = num_records * num_columns
        frac = numeric_columns / num_columns if num_columns else 0.0
        return WorkloadStats(
            input_bytes=input_bytes, chunk_size=chunk_size,
            num_states=num_states, num_columns=num_columns,
            num_records=num_records, num_fields=fields,
            numeric_field_fraction=frac,
            record_tag_bytes=record_tag_bytes, name=name)


@dataclass
class StepCosts:
    """Per-step durations in seconds (the Figure 9 breakdown)."""

    parse: float = 0.0
    scan: float = 0.0
    tag: float = 0.0
    partition: float = 0.0
    convert: float = 0.0

    @property
    def total(self) -> float:
        return self.parse + self.scan + self.tag + self.partition \
            + self.convert

    def as_dict(self) -> dict[str, float]:
        return {"parse": self.parse, "scan": self.scan, "tag": self.tag,
                "partition": self.partition, "convert": self.convert}

    def __add__(self, other: "StepCosts") -> "StepCosts":
        return StepCosts(
            parse=self.parse + other.parse,
            scan=self.scan + other.scan,
            tag=self.tag + other.tag,
            partition=self.partition + other.partition,
            convert=self.convert + other.convert)

    def scaled(self, factors: dict[str, float]) -> "StepCosts":
        """A copy with each step multiplied by ``factors`` (default 1.0).

        This is how measured calibration ratios rescale a prediction:
        ``repro.plan.calibration.CalibrationStore.apply`` builds the
        factor map from observed/modelled EWMAs.
        """
        return StepCosts(
            parse=self.parse * factors.get("parse", 1.0),
            scan=self.scan * factors.get("scan", 1.0),
            tag=self.tag * factors.get("tag", 1.0),
            partition=self.partition * factors.get("partition", 1.0),
            convert=self.convert * factors.get("convert", 1.0))


@dataclass
class PipelineCostModel:
    """Converts workload statistics into simulated step durations."""

    device: DeviceSpec = field(default_factory=lambda: TITAN_X_PASCAL)

    # ---- calibration constants (fitted to the paper; see module docs) ----
    #: DFA-simulation cost per input byte per DFA instance (SWAR match is
    #: shared; one MFIRA-backed table lookup + update per instance).
    parse_cycles_per_byte_per_state: float = 22.0
    #: Single-instance re-simulation + bitmap/tag emission per byte.
    tag_cycles_per_byte: float = 60.0
    #: Numeric/temporal field conversion, per field.
    convert_cycles_per_field: float = 700.0
    #: Kernel launches per column during conversion (CSS-index generation
    #: + offsets scan + conversion kernel — paper §5.1).
    launches_per_column: float = 3.0
    #: Fixed pipeline launches (parse, scan, tag, offsets, partition x2).
    fixed_launches: float = 8.0
    #: Per-thread setup cost, in cycles (dominates tiny chunk sizes).
    thread_init_cycles: float = 120.0
    #: Radix-sort digit width in bits.
    radix_bits: int = 8

    def __post_init__(self) -> None:
        self._kernel = KernelModel(self.device,
                                   thread_init_cycles=self.thread_init_cycles)
        self._gmem = GlobalMemoryModel(self.device)
        self._smem = SharedMemoryModel()

    # ---- helpers -----------------------------------------------------------

    def _compute_seconds(self, cycles: float) -> float:
        return cycles / self.device.peak_ops_per_second

    def _stv_bytes(self, stats: WorkloadStats) -> float:
        """Bytes of state-transition-vector metadata (1 B per state)."""
        return stats.num_chunks * stats.num_states

    # ---- per-step costs -----------------------------------------------------

    def parse_cost(self, stats: WorkloadStats) -> float:
        """Phase 1: multi-instance DFA simulation producing the STVs."""
        launch = KernelLaunch("parse", stats.num_chunks,
                              registers_per_thread=40)
        compute = self._compute_seconds(
            stats.input_bytes * stats.num_states
            * self.parse_cycles_per_byte_per_state)
        memory = self._gmem.stream_time(stats.input_bytes
                                        + self._stv_bytes(stats))
        conflict = self._smem.conflict_slowdown(stats.chunk_size,
                                                self.device.warp_size)
        busy = max(compute, memory) * conflict
        return busy + self._kernel.thread_setup_time(launch) \
            + self._kernel.launch_overhead(1)

    def scan_cost(self, stats: WorkloadStats) -> float:
        """Exclusive scan of the STVs (plus the offset scans).

        Bandwidth bound over the metadata; the single-pass scan reads and
        writes each tile once plus look-back traffic (~3x the payload).
        Linear in the number of chunks — noticeable only for tiny chunks
        (paper §5.1).
        """
        payload = self._stv_bytes(stats) + stats.num_chunks * 8.0
        return self._gmem.stream_time(3.0 * payload) \
            + self._kernel.launch_overhead(1)

    def tag_cost(self, stats: WorkloadStats) -> float:
        """Phase 2: re-simulation + bitmaps + record/column tags."""
        launch = KernelLaunch("tag", stats.num_chunks,
                              registers_per_thread=40)
        compute = self._compute_seconds(
            stats.input_bytes * self.tag_cycles_per_byte)
        # Bitmaps: 3 bits per byte; tags: column tag (1 B after group
        # compression) + record tag per symbol, mode dependent.
        tag_bytes = stats.input_bytes * (3 / 8 + 1.0
                                         + stats.record_tag_bytes)
        memory = self._gmem.stream_time(stats.input_bytes + tag_bytes)
        conflict = self._smem.conflict_slowdown(stats.chunk_size,
                                                self.device.warp_size)
        busy = max(compute, memory) * conflict
        return busy + self._kernel.thread_setup_time(launch) \
            + self._kernel.launch_overhead(2)

    def partition_cost(self, stats: WorkloadStats) -> float:
        """Phase 3a: stable radix sort of symbols by column tag."""
        key_bits = max(1, (stats.num_columns - 1).bit_length())
        passes = -(-key_bits // self.radix_bits)
        # Each pass streams the symbol + record tag + key in, and scatters
        # the symbol + record tag out (the key is consumed by the pass).
        read_payload = stats.input_bytes * (2.0 + stats.record_tag_bytes)
        write_payload = stats.input_bytes * (1.0 + stats.record_tag_bytes)
        per_pass = self._gmem.stream_time(read_payload) \
            + self._gmem.scatter_time(write_payload)
        return passes * per_pass + self._kernel.launch_overhead(3 * passes)

    def convert_cost(self, stats: WorkloadStats) -> float:
        """Phase 3b: CSS index generation + typed conversion."""
        launches = self._kernel.launch_overhead(
            self.launches_per_column * stats.num_columns)
        # CSS index: RLE over record tags + offsets scan (bandwidth).
        index_bytes = stats.input_bytes * stats.record_tag_bytes \
            + stats.num_fields * 8.0
        index_time = self._gmem.stream_time(index_bytes)
        # Conversion: numeric fields cost cycles; text is a copy.
        numeric_fields = stats.num_fields * stats.numeric_field_fraction
        compute = self._compute_seconds(
            numeric_fields * self.convert_cycles_per_field)
        copy_time = self._gmem.stream_time(2.0 * stats.input_bytes)
        return launches + index_time + compute + copy_time

    # ---- aggregates ----------------------------------------------------------

    def step_costs(self, stats: WorkloadStats) -> StepCosts:
        """The full Figure 9-style breakdown for one workload."""
        return StepCosts(
            parse=self.parse_cost(stats),
            scan=self.scan_cost(stats),
            tag=self.tag_cost(stats),
            partition=self.partition_cost(stats),
            convert=self.convert_cost(stats),
        )

    def total_seconds(self, stats: WorkloadStats) -> float:
        return self.step_costs(stats).total

    def parsing_rate(self, stats: WorkloadStats) -> float:
        """On-GPU parsing rate in bytes/second (Figure 10's y axis)."""
        total = self.total_seconds(stats)
        if total <= 0:
            raise SimulationError("non-positive simulated duration")
        return stats.input_bytes / total

    # ---- memory footprint ----------------------------------------------------

    def device_memory_bytes(self, stats: WorkloadStats) -> float:
        """Peak device-memory footprint of an on-GPU parse.

        Counts the resident allocations: raw input, STVs + per-chunk
        offsets, the three bitmap indexes, column/record tags, the
        double-buffered radix-sort payload, CSS indexes and the typed
        output.  Record-tagged mode carries 4 extra bytes per symbol
        through tagging/partitioning — the reason the paper evaluates
        only the first 512 MB of each dataset, "to be able to evaluate
        all tagging modes before running out of device memory" (§5.1).
        """
        n = stats.input_bytes
        metadata = self._stv_bytes(stats) + stats.num_chunks * 16.0
        bitmaps = n * 3 / 8
        tags = n * (1.0 + stats.record_tag_bytes)
        # LSD radix sort ping-pongs two full payload copies.
        sort_payload = 2.0 * n * (1.0 + stats.record_tag_bytes)
        index = stats.num_fields * 16.0
        output = n * 1.1 + stats.num_fields * 1.0 / 8
        return n + metadata + bitmaps + tags + sort_payload + index \
            + output

    def convert_cost_row_order(self, stats: WorkloadStats) -> float:
        """Conversion cost WITHOUT the columnar partition (§3.3's foil).

        If threads converted fields in row order, neighbouring threads
        would hold different column types and execute divergent code
        paths; a warp serialises by the expected number of distinct paths
        among its lanes.  Comparing against :meth:`convert_cost` (where a
        warp's threads all convert the same column) quantifies why
        ParPaRaw pays for the radix-sort partition.
        """
        from repro.gpusim.warp import WarpExecutionModel
        warp_model = WarpExecutionModel(self.device.warp_size)
        path_mix = {column: 1.0 / stats.num_columns
                    for column in range(stats.num_columns)}
        penalty = warp_model.divergence_penalty(path_mix)
        launches = self._kernel.launch_overhead(1.0)
        numeric_fields = stats.num_fields * stats.numeric_field_fraction
        compute = self._compute_seconds(
            numeric_fields * self.convert_cycles_per_field) * penalty
        copy_time = self._gmem.stream_time(2.0 * stats.input_bytes)
        return launches + compute + copy_time

    def suggest_chunk_size(self, stats_factory, input_bytes: int,
                           candidates: range = range(4, 65)) -> int:
        """The chunk size minimising simulated total time.

        Searching the model over the paper's 4-64 byte range lands on an
        odd, near-register-width size (the paper settles on 31 — §5.1);
        exposed so applications can tune for other devices or workloads.
        """
        best_size = None
        best_time = float("inf")
        for chunk_size in candidates:
            stats = stats_factory(input_bytes, chunk_size=chunk_size)
            seconds = self.total_seconds(stats)
            if seconds < best_time:
                best_time = seconds
                best_size = chunk_size
        if best_size is None:
            raise SimulationError("no candidate chunk sizes given")
        return best_size

    def max_input_for_device(self, stats_factory,
                             record_tag_bytes: float = 4.0) -> int:
        """Largest input (bytes) whose parse fits in device memory.

        Binary-searches the footprint model; with the Titan X's 12 GB and
        record-tagged mode this lands near the paper's 512 MB-per-dataset
        evaluation ceiling (three tagging-mode variants resident ≈ the
        quoted constraint).
        """
        lo, hi = 1, self.device.memory_bytes
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            stats = stats_factory(mid, record_tag_bytes=record_tag_bytes)
            if self.device_memory_bytes(stats) <= self.device.memory_bytes:
                lo = mid
            else:
                hi = mid
        return lo
