"""Kernel-launch and occupancy model.

Two launch-time effects matter for the reproduction:

* **fixed launch overhead** — the paper attributes ParPaRaw's efficiency
  drop on tiny inputs to the many kernel invocations of the type-conversion
  step, estimating 5-10 µs each (§5.1).  :class:`KernelModel` charges that
  fixed cost per launch, which reproduces the left side of Figure 10.

* **occupancy** — for tiny chunk sizes the number of threads explodes and
  per-thread initialisation dominates; for chunk sizes that are large
  powers of two, register/shared-memory pressure and bank conflicts reduce
  effective throughput (Figure 9's spikes).  :meth:`KernelModel.occupancy`
  gives the resident-warp fraction from the per-thread resource footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.gpusim.device import DeviceSpec

__all__ = ["KernelLaunch", "KernelModel"]


@dataclass(frozen=True)
class KernelLaunch:
    """One kernel invocation's footprint."""

    name: str
    num_threads: int
    registers_per_thread: int = 32
    shared_bytes_per_block: int = 0
    block_size: int = 128

    def __post_init__(self) -> None:
        if self.num_threads < 0:
            raise SimulationError("num_threads must be non-negative")
        if self.block_size <= 0:
            raise SimulationError("block_size must be positive")


@dataclass
class KernelModel:
    """Launch-cost and occupancy estimation for a device."""

    device: DeviceSpec
    #: Per-thread fixed initialisation cost in core-cycles (thread setup,
    #: index computation, meta-data reads).  Dominates at tiny chunk sizes.
    thread_init_cycles: float = 40.0

    def launch_overhead(self, num_launches: int = 1) -> float:
        """Fixed host-side cost of ``num_launches`` kernel invocations."""
        if num_launches < 0:
            raise SimulationError("num_launches must be non-negative")
        return num_launches * self.device.kernel_launch_overhead

    def occupancy(self, launch: KernelLaunch) -> float:
        """Fraction of the SM's warp slots the launch can keep resident.

        Limited by registers per SM and shared memory per SM; returns a
        value in (0, 1].
        """
        dev = self.device
        warps_per_block = -(-launch.block_size // dev.warp_size)
        max_warps = dev.max_threads_per_sm // dev.warp_size

        # Register limit.
        regs_per_block = launch.registers_per_thread * launch.block_size
        blocks_by_regs = (dev.registers_per_sm // regs_per_block
                          if regs_per_block else 10 ** 9)
        # Shared-memory limit.
        if launch.shared_bytes_per_block:
            blocks_by_smem = (dev.shared_memory_per_sm
                              // launch.shared_bytes_per_block)
        else:
            blocks_by_smem = 10 ** 9
        blocks = min(blocks_by_regs, blocks_by_smem)
        if blocks <= 0:
            raise SimulationError(
                f"kernel {launch.name!r} cannot fit a single block on an SM")
        resident_warps = min(blocks * warps_per_block, max_warps)
        return resident_warps / max_warps

    def thread_setup_time(self, launch: KernelLaunch) -> float:
        """Aggregate per-thread initialisation time for a launch.

        ``num_threads * init_cycles`` of work spread over all cores.
        """
        total_cycles = launch.num_threads * self.thread_init_cycles
        return total_cycles / self.device.peak_ops_per_second

    def compute_time(self, launch: KernelLaunch,
                     cycles_per_thread: float) -> float:
        """Seconds for a compute-bound kernel at its occupancy.

        Occupancy below ~50% fails to hide latency; the achieved
        throughput scales with ``min(1, occupancy / 0.5)``.
        """
        occ = self.occupancy(launch)
        efficiency = min(1.0, occ / 0.5)
        total_cycles = launch.num_threads * cycles_per_thread
        return (total_cycles / self.device.peak_ops_per_second) / efficiency
