"""GPU execution substrate: intrinsics, data structures, and a cost model.

The paper maps ParPaRaw onto an NVIDIA Titan X (Pascal).  No GPU is
available in this reproduction, so this subpackage supplies two things:

1. **Bit-exact software implementations of the GPU devices the paper
   introduces** — the BFI/BFE/``bfind``/``popc`` intrinsics
   (:mod:`~repro.gpusim.bitfield`), the branchless SWAR symbol matcher of
   Table 2 (:mod:`~repro.gpusim.swar`), and the multi-fragment in-register
   array of Figure 8 (:mod:`~repro.gpusim.mfira`).  These run and are
   tested like any other module.

2. **A calibrated execution model** — device specifications
   (:mod:`~repro.gpusim.device`), a kernel-launch/occupancy/bank-conflict
   model (:mod:`~repro.gpusim.kernel`, :mod:`~repro.gpusim.memory`,
   :mod:`~repro.gpusim.warp`) and a per-pipeline-step cost model
   (:mod:`~repro.gpusim.cost_model`) that converts workload statistics into
   simulated durations, calibrated against the paper's reported numbers so
   the benchmark harness can regenerate the *shape* of Figures 9-13.
"""

from repro.gpusim.bitfield import bfi, bfe, bfind, popc, brev
from repro.gpusim.swar import SwarMatcher, mycroft_null_byte_mask
from repro.gpusim.mfira import Mfira
from repro.gpusim.device import DeviceSpec, TITAN_X_PASCAL, GTX_1080, V100
from repro.gpusim.kernel import KernelLaunch, KernelModel
from repro.gpusim.memory import SharedMemoryModel, GlobalMemoryModel
from repro.gpusim.warp import WarpExecutionModel
from repro.gpusim.cost_model import PipelineCostModel, WorkloadStats, StepCosts

__all__ = [
    "bfi",
    "bfe",
    "bfind",
    "popc",
    "brev",
    "SwarMatcher",
    "mycroft_null_byte_mask",
    "Mfira",
    "DeviceSpec",
    "TITAN_X_PASCAL",
    "GTX_1080",
    "V100",
    "KernelLaunch",
    "KernelModel",
    "SharedMemoryModel",
    "GlobalMemoryModel",
    "WarpExecutionModel",
    "PipelineCostModel",
    "WorkloadStats",
    "StepCosts",
]
