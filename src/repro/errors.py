"""Exception hierarchy for the ParPaRaw reproduction.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch everything from this package with a single ``except`` clause while still
being able to discriminate specific failure modes.
"""

from __future__ import annotations

__all__ = [
    "AdmissionError",
    "CapacityError",
    "ColumnarError",
    "ConversionError",
    "DfaError",
    "DialectError",
    "ExecutorError",
    "ParseError",
    "ProtocolError",
    "ReproError",
    "SchemaError",
    "ServeError",
    "SimulationError",
    "StreamingError",
]


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DialectError(ReproError):
    """A :class:`~repro.dfa.dialects.Dialect` is internally inconsistent.

    Examples: the field delimiter equals the quote character, or a symbol is
    assigned to two different symbol groups.
    """


class DfaError(ReproError):
    """A DFA definition is malformed (unknown state, missing transition...)."""


class ParseError(ReproError):
    """The input violates the configured format.

    Raised only when :attr:`~repro.core.options.ParseOptions.strict` is
    enabled; otherwise offending records are rejected and reported in the
    :class:`~repro.core.result.ParseResult`.
    """

    def __init__(self, message: str, *, byte_offset: int | None = None,
                 record: int | None = None):
        super().__init__(message)
        #: Byte offset into the raw input where the violation was detected,
        #: if known.
        self.byte_offset = byte_offset
        #: Zero-based record number of the offending record, if known.
        self.record = record


class ConversionError(ReproError):
    """A field could not be converted to the declared column type.

    Raised only in strict mode; otherwise the field is rejected (its
    validity bit is cleared and the per-column reject counter incremented).
    """

    def __init__(self, message: str, *, column: int | None = None,
                 record: int | None = None, text: str | None = None):
        super().__init__(message)
        #: Zero-based column index of the offending field, if known.
        self.column = column
        #: Zero-based record number of the offending field, if known.
        self.record = record
        #: The raw field text that failed to convert, if available.
        self.text = text


class SchemaError(ReproError):
    """A schema is inconsistent with the input or with itself."""


class ColumnarError(SchemaError):
    """A columnar buffer operation or serialised stream is malformed.

    Subclasses :class:`SchemaError` so existing handlers around the
    serialisation round trip keep working; raised for framing problems
    (bad magic, truncation, trailing bytes, length-field overflow) and
    inconsistent buffer geometry.
    """


class CapacityError(ReproError):
    """A bounded container (e.g. MFIRA) was asked to exceed its capacity."""


class SimulationError(ReproError):
    """The GPU execution simulator was configured inconsistently."""


class StreamingError(ReproError):
    """The streaming pipeline was misconfigured or violated a dependency.

    Carries byte-offset diagnostics when the failure is positional — e.g.
    the carry-over growing past ``max_carry_bytes`` records where in the
    stream the runaway (typically an unterminated quoted field) began.
    """

    def __init__(self, message: str, *, byte_offset: int | None = None,
                 carry_bytes: int | None = None):
        super().__init__(message)
        #: Absolute stream offset where the offending region begins
        #: (the first byte of the unflushable carry), if known.
        self.byte_offset = byte_offset
        #: Size of the carry-over at the time of failure, if known.
        self.carry_bytes = carry_bytes


class ExecutorError(ReproError):
    """An execution backend was used after being closed, or misconfigured."""


class ServeError(ReproError):
    """The ingest service was misconfigured, misused, or shut down."""


class AdmissionError(ServeError):
    """The ingest service refused to enqueue a request (backpressure).

    ``retry_after`` is the server's backoff hint in seconds when the
    rejection is transient (a full admission queue); ``None`` means the
    request can never be admitted as-is (e.g. an oversized body).
    """

    def __init__(self, message: str, *, reason: str = "rejected",
                 retry_after: float | None = None):
        super().__init__(message)
        #: Machine-readable rejection reason (``queue-full``,
        #: ``oversized``, ``closed``).
        self.reason = reason
        #: Suggested client backoff in seconds, if the reject is transient.
        self.retry_after = retry_after


class ProtocolError(ServeError):
    """A serve wire frame was malformed (bad magic, truncation, limits)."""
