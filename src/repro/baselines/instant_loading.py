"""Instant-Loading-style chunked parallel parser (Mühlbauer et al. 2013).

The paper's main CPU competitor (§2, §5.2).  The input is split into equal
chunks; each thread scans forward to the first record delimiter in its
chunk, then parses complete records, continuing past the chunk boundary to
finish its last record.

Two modes, exactly as the paper describes:

* **unsafe** (default) — a thread assumes every record-delimiter byte it
  sees is a real record boundary.  Fast, but wrong whenever the input uses
  enclosing symbols: a newline inside a quoted field splits a record in
  two, which is why "the implementation of Inst. Loading ... could not
  handle the yelp dataset due to its incomplete handling of quoted strings
  in parallel loads" (paper §5.2).  :meth:`InstantLoadingParser.parse_rows`
  surfaces this as silently wrong output (the experiment detects it by
  comparing against the reference parser).
* **safe** — a *sequential* pre-pass tracks quotation scope over the whole
  input and records the true record boundaries; chunks are then split only
  at actual record delimiters and parsed in parallel.  Correct, but the
  serial pre-pass bounds the speed-up (Amdahl), which is the scalability
  argument motivating ParPaRaw.

Within a chunk, record bytes are parsed with the same sequential FSM as
:mod:`repro.baselines.sequential`, so field semantics line up; the point of
this baseline is the *boundary detection*, not the per-record loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.sequential import sequential_rows
from repro.dfa.automaton import Dfa
from repro.dfa.csv import dialect_dfa
from repro.dfa.dialects import Dialect
from repro.errors import ParseError

__all__ = ["InstantLoadingParser", "InstantLoadingStats"]


@dataclass
class InstantLoadingStats:
    """Work accounting for the scalability ablation."""

    num_threads: int = 0
    #: Bytes scanned by the sequential safe-mode pre-pass (serial work).
    sequential_bytes: int = 0
    #: Bytes parsed inside chunks (parallelisable work).
    parallel_bytes: int = 0
    #: Threads that found no record boundary in their chunk (they perform
    #: no parsing work — the load-balancing pathology the paper notes).
    idle_threads: int = 0


class InstantLoadingParser:
    """Chunk-at-record-boundary parallel parser with optional safe mode."""

    def __init__(self, dialect: Dialect | None = None,
                 num_threads: int = 8, safe_mode: bool = False):
        if num_threads <= 0:
            raise ParseError("num_threads must be positive")
        self.dialect = dialect if dialect is not None else Dialect.csv()
        self.num_threads = num_threads
        self.safe_mode = safe_mode
        self._dfa: Dfa = dialect_dfa(self.dialect)
        self.stats = InstantLoadingStats()

    # -- public -----------------------------------------------------------

    def parse_rows(self, data: bytes) -> list[list[bytes | None]]:
        """Parse into records of raw fields (``None`` = empty field).

        In unsafe mode the result may be *wrong* for inputs with enclosed
        delimiters — that is the documented behaviour being reproduced.
        """
        self.stats = InstantLoadingStats(num_threads=self.num_threads)
        if not data:
            return []
        if self.safe_mode:
            boundaries = self._safe_boundaries(data)
        else:
            boundaries = self._unsafe_boundaries(data)
        return self._parse_chunks(data, boundaries)

    # -- boundary detection -------------------------------------------------

    def _unsafe_boundaries(self, data: bytes) -> list[int]:
        """Chunk start offsets: first byte after a record delimiter at or
        after each nominal chunk start — *without* tracking context."""
        n = len(data)
        chunk = -(-n // self.num_threads)
        newline = self.dialect.record_delimiter
        starts = [0]
        for t in range(1, self.num_threads):
            nominal = t * chunk
            if nominal >= n:
                break
            found = data.find(newline, nominal)
            if found < 0:
                self.stats.idle_threads += 1
                continue
            start = found + 1
            if start > starts[-1]:
                starts.append(start)
            else:
                self.stats.idle_threads += 1
        return starts

    def _safe_boundaries(self, data: bytes) -> list[int]:
        """Sequential context-tracking pre-pass (the paper's safe mode).

        Walks the whole input once, maintaining quotation scope (and
        comment scope when the dialect has comments), recording actual
        record-delimiter positions; then splits at the actual boundaries
        nearest the nominal chunk starts.
        """
        self.stats.sequential_bytes = len(data)
        quote = self.dialect.quote_byte
        comment = self.dialect.comment_byte
        newline = self.dialect.record_delimiter_byte
        in_quotes = False
        in_comment = False
        at_record_start = True
        true_boundaries: list[int] = []
        for i, byte in enumerate(data):
            if in_comment:
                if byte == newline:
                    in_comment = False
                    at_record_start = True
                continue
            if quote is not None and byte == quote:
                in_quotes = not in_quotes
                at_record_start = False
                continue
            if in_quotes:
                continue
            if comment is not None and byte == comment and at_record_start:
                in_comment = True
                continue
            if byte == newline:
                true_boundaries.append(i + 1)
                at_record_start = True
            else:
                at_record_start = False

        n = len(data)
        chunk = -(-n // self.num_threads)
        boundary_array = np.array(true_boundaries, dtype=np.int64)
        starts = [0]
        for t in range(1, self.num_threads):
            nominal = t * chunk
            if nominal >= n:
                break
            idx = int(np.searchsorted(boundary_array, nominal))
            if idx >= len(boundary_array):
                self.stats.idle_threads += 1
                continue
            start = int(boundary_array[idx])
            if start > starts[-1]:
                starts.append(start)
            else:
                self.stats.idle_threads += 1
        return starts

    # -- chunk parsing --------------------------------------------------------

    def _parse_chunks(self, data: bytes,
                      starts: list[int]) -> list[list[bytes | None]]:
        """Parse each thread's byte range with the record-level FSM."""
        rows: list[list[bytes | None]] = []
        ends = starts[1:] + [len(data)]
        for start, end in zip(starts, ends):
            if start >= end:
                continue
            segment = data[start:end]
            self.stats.parallel_bytes += len(segment)
            # Each "thread" parses its complete records; because chunk
            # boundaries sit just after a record delimiter, the segment
            # starts at a (presumed) record start.
            chunk_rows, _, _ = sequential_rows(segment, self._dfa)
            rows.extend(chunk_rows)
        return rows

    def serial_fraction(self) -> float:
        """Fraction of bytes touched serially (Amdahl's bound input)."""
        total = self.stats.sequential_bytes + self.stats.parallel_bytes
        if total == 0:
            return 0.0
        return self.stats.sequential_bytes / total

    def amdahl_speedup(self, cores: int) -> float:
        """Upper-bound speed-up on ``cores`` given the serial fraction."""
        serial = self.serial_fraction()
        denominator = serial + (1.0 - serial) / cores
        return 1.0 / denominator if denominator > 0 else float(cores)
