"""Baseline parsers and system models the paper compares against (§5.2).

Real implementations (executed and measured):

* :class:`~repro.baselines.sequential.SequentialParser` — the classic
  single-pass FSM parser; the semantic ground truth every parallel path is
  tested against.
* :mod:`~repro.baselines.instant_loading` — the Mühlbauer et al. chunked
  parser ("Instant Loading"): threads start at the first record delimiter
  in their chunk and overrun into the next.  Its *unsafe* mode
  misinterprets quoted delimiters (the reason it "could not handle the
  yelp dataset" in the paper); its *safe* mode adds the sequential
  context-tracking pre-pass whose serial fraction caps scalability.
* :mod:`~repro.baselines.quote_count` — the Mison-style speculative parser
  that infers quotation scope from the parity of preceding quotes; exact
  for plain RFC 4180, wrong as soon as comments/directives appear.
* :mod:`~repro.baselines.stdlib_csv` — Python's ``csv`` module, as an
  independent third-party oracle for RFC 4180 inputs.

Calibrated models (for the Figure 13 comparison only):
:mod:`~repro.baselines.system_models` reproduces the end-to-end durations
the paper reports for MonetDB, Spark, pandas, cuDF and Instant Loading.
"""

from repro.baselines.sequential import SequentialParser, sequential_rows
from repro.baselines.instant_loading import InstantLoadingParser
from repro.baselines.quote_count import QuoteCountParser
from repro.baselines.stdlib_csv import stdlib_csv_rows
from repro.baselines.system_models import (
    SystemModel,
    PAPER_SYSTEMS,
    modelled_duration,
)

__all__ = [
    "SequentialParser",
    "sequential_rows",
    "InstantLoadingParser",
    "QuoteCountParser",
    "stdlib_csv_rows",
    "SystemModel",
    "PAPER_SYSTEMS",
    "modelled_duration",
]
