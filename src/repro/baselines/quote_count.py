"""Quote-parity speculative parser (the Mison-style exploit).

Related work (paper §2) avoids FSMs by exploiting format specifics: count
double-quotes and infer that a symbol is inside an enclosed string iff the
number of preceding quotes is odd.  This enables SIMD-friendly, branch-poor
code — and is exactly the kind of tailoring ParPaRaw argues against: "as
soon as the format gets more complex, e.g., by introducing line comments,
such an approach tends to break" (paper §2).

This implementation is fully vectorised (a cumulative XOR over the quote
bitmap) and intentionally format-naive, so the test suite can demonstrate
both sides: exact agreement with the reference parser on plain RFC 4180
inputs, and silent misparsing when comments or stray quotes appear.
"""

from __future__ import annotations

import numpy as np

from repro.dfa.dialects import Dialect

__all__ = ["QuoteCountParser"]


class QuoteCountParser:
    """CSV parsing via quote-parity speculation (no FSM)."""

    def __init__(self, dialect: Dialect | None = None):
        self.dialect = dialect if dialect is not None else Dialect.csv()

    def parse_rows(self, data: bytes) -> list[list[bytes | None]]:
        """Records of raw field values (``None`` = empty field).

        Semantics on well-formed RFC 4180 input match the reference
        parser; enclosing quotes are stripped and doubled quotes
        collapsed.  Comments are *not* understood — by design.
        """
        if not data:
            return []
        arr = np.frombuffer(data, dtype=np.uint8)
        quote = self.dialect.quote_byte
        newline = self.dialect.record_delimiter_byte
        delim = self.dialect.delimiter_byte

        if quote is None:
            inside = np.zeros(arr.size, dtype=bool)
        else:
            quote_mask = arr == quote
            # Parity of quotes strictly before each position: inside an
            # enclosure iff odd.
            parity = np.cumsum(quote_mask, dtype=np.int64)
            inside = ((parity - quote_mask) & 1).astype(bool)

        record_ends = np.flatnonzero((arr == newline) & ~inside)
        rows: list[list[bytes | None]] = []
        start = 0
        boundaries = list(record_ends) + \
            ([arr.size] if (record_ends.size == 0
                            or record_ends[-1] != arr.size - 1) else [])
        for end in boundaries:
            end = int(end)
            if end == arr.size and end == start:
                break
            segment = arr[start:end]
            seg_inside = inside[start:end]
            rows.append(self._split_record(segment, seg_inside, delim,
                                           quote))
            start = end + 1
        return rows

    def _split_record(self, segment: np.ndarray, inside: np.ndarray,
                      delim: int, quote: int | None
                      ) -> list[bytes | None]:
        """Split one record at unenclosed field delimiters."""
        cuts = np.flatnonzero((segment == delim) & ~inside)
        fields: list[bytes | None] = []
        lo = 0
        for cut in list(cuts) + [segment.size]:
            cut = int(cut)
            raw = segment[lo:cut].tobytes()
            fields.append(self._unquote(raw, quote))
            lo = cut + 1
        return fields

    @staticmethod
    def _unquote(raw: bytes, quote: int | None) -> bytes | None:
        """Strip enclosing quotes, collapse doubled quotes, None if empty."""
        if quote is None:
            return raw if raw else None
        q = bytes([quote])
        if len(raw) >= 2 and raw[:1] == q and raw[-1:] == q:
            raw = raw[1:-1].replace(q + q, q)
            return raw if raw else None
        return raw if raw else None
