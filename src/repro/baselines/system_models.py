"""Calibrated throughput models for the paper's closed-system comparators.

Figure 13 compares ParPaRaw end-to-end against MonetDB, Apache Spark,
pandas, RAPIDS cuDF (with and without the Arrow export), and Instant
Loading on two datasets.  Those systems cannot be rebuilt here, so — per
the substitution rule — each is modelled as an effective parsing rate per
dataset, calibrated from the paper's reported durations:

========== ============== ===============
system     yelp (4.823 GB) taxi (9.073 GB)
========== ============== ===============
ParPaRaw   0.44 s          0.9 s
cuDF*      7.3 s           9.4 s
cuDF       10.5 s          16.5 s
Inst. Load —(failed)       3.6 s
MonetDB    58.2 s          38.0 s
Spark      94.3 s          98.1 s
pandas     91.3 s          83.4 s
========== ============== ===============

The per-dataset rates capture each system's sensitivity to the workload
shape (text-heavy quoted fields vs many small numeric fields); durations
for other input sizes extrapolate linearly plus a fixed startup cost.
ParPaRaw itself is *not* modelled here — the streaming pipeline simulation
(:mod:`repro.streaming.pipeline`) produces its end-to-end time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["SystemModel", "PAPER_SYSTEMS", "modelled_duration"]

GB = 1e9

_YELP_BYTES = 4.823e9
_TAXI_BYTES = 9.073e9


@dataclass(frozen=True)
class SystemModel:
    """One comparator's effective end-to-end parsing rates.

    ``None`` for a rate means the system failed on that dataset class
    (Instant Loading on quote-heavy input — paper §5.2).
    """

    name: str
    #: bytes/second on text-heavy quoted data (yelp-like).
    rate_text_heavy: float | None
    #: bytes/second on numeric-heavy simple data (taxi-like).
    rate_numeric_heavy: float
    #: Fixed startup cost in seconds (JVM spin-up, catalog setup, ...).
    startup_seconds: float = 0.0

    def duration(self, input_bytes: float, text_heavy: bool) -> float:
        """Modelled end-to-end seconds for an input of the given shape."""
        rate = self.rate_text_heavy if text_heavy else self.rate_numeric_heavy
        if rate is None:
            raise SimulationError(
                f"{self.name} cannot parse text-heavy quoted input "
                f"(incomplete handling of quoted strings)")
        return self.startup_seconds + input_bytes / rate


def _rate(dataset_bytes: float, seconds: float,
          startup: float = 0.0) -> float:
    return dataset_bytes / (seconds - startup)


#: The Figure 13 comparators, calibrated to the paper's reported numbers.
PAPER_SYSTEMS: dict[str, SystemModel] = {
    "cuDF*": SystemModel(
        name="cuDF* (GPU DataFrame, no export)",
        rate_text_heavy=_rate(_YELP_BYTES, 7.3),
        rate_numeric_heavy=_rate(_TAXI_BYTES, 9.4)),
    "cuDF": SystemModel(
        name="cuDF (with to_arrow export)",
        rate_text_heavy=_rate(_YELP_BYTES, 10.5),
        rate_numeric_heavy=_rate(_TAXI_BYTES, 16.5)),
    "Inst. Loading": SystemModel(
        name="Instant Loading (32 cores)",
        rate_text_heavy=None,   # failed on yelp (paper §5.2)
        rate_numeric_heavy=_rate(_TAXI_BYTES, 3.6)),
    "MonetDB": SystemModel(
        name="MonetDB",
        rate_text_heavy=_rate(_YELP_BYTES, 58.2),
        rate_numeric_heavy=_rate(_TAXI_BYTES, 38.0)),
    "Spark": SystemModel(
        name="Apache Spark",
        rate_text_heavy=_rate(_YELP_BYTES, 94.3, startup=4.0),
        rate_numeric_heavy=_rate(_TAXI_BYTES, 98.1, startup=4.0),
        startup_seconds=4.0),
    "pandas": SystemModel(
        name="pandas read_csv",
        rate_text_heavy=_rate(_YELP_BYTES, 91.3),
        rate_numeric_heavy=_rate(_TAXI_BYTES, 83.4)),
}


def modelled_duration(system: str, input_bytes: float,
                      text_heavy: bool) -> float:
    """End-to-end seconds for a named comparator (Figure 13 rows)."""
    try:
        model = PAPER_SYSTEMS[system]
    except KeyError:
        raise SimulationError(f"unknown system {system!r}; available: "
                              f"{sorted(PAPER_SYSTEMS)}") from None
    return model.duration(input_bytes, text_heavy)
