"""Python ``csv`` module wrapper — an independent correctness oracle.

The standard library's CSV reader is an implementation the library's
authors did not write, making it a useful third-party cross-check for
RFC 4180 inputs in the test suite (and the stand-in for "a mature CPU
parser" in relative wall-clock comparisons).

Semantics are aligned with the reference parser where the two models can
agree; the notable differences are documented on
:func:`stdlib_csv_rows` and handled by the callers:

* ``csv`` returns an *empty list* for a blank line, where the reference
  semantics give one empty field;
* ``csv`` cannot represent the present-vs-empty distinction (``""`` vs an
  empty unquoted field) — both come back as ``""``.
"""

from __future__ import annotations

import csv
import io

from repro.dfa.dialects import Dialect

__all__ = ["stdlib_csv_rows"]


def stdlib_csv_rows(data: bytes,
                    dialect: Dialect | None = None) -> list[list[str]]:
    """Parse with :mod:`csv` into records of string fields.

    Empty fields come back as ``""`` (the module cannot express NULL).
    """
    dialect = dialect if dialect is not None else Dialect.csv()
    text = data.decode("utf-8")
    reader = csv.reader(
        io.StringIO(text, newline=""),
        delimiter=dialect.delimiter.decode(),
        quotechar=dialect.quote.decode() if dialect.quote else None,
        doublequote=dialect.doubled_quote,
        escapechar=dialect.escape.decode() if dialect.escape else None,
        strict=False,
    )
    return [row for row in reader]
