"""Sequential reference parser — the semantic ground truth.

One pass, one DFA instance, beginning to end: always aware of the parsing
context (the luxury ParPaRaw must reconstruct in parallel).  Every parallel
code path in this library is tested for equality against this parser, so
its record/field semantics define the library's semantics:

* a record ends at a ``RECORD_DELIMITER`` emission; input ending mid-record
  contributes a trailing record when any record content (DATA,
  FIELD_DELIMITER or CONTROL emission) followed the last delimiter;
* a field's value is the concatenation of its DATA symbols; a field with
  *no* DATA symbols is "absent" (``None``) — the typed layer resolves
  absents to the column default or NULL;
* comment/directive lines produce no record.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.columnar.schema import Field, Schema
from repro.columnar.table import Column, Table
from repro.core.options import ColumnCountPolicy, ParseOptions
from repro.core.scalar_convert import convert_scalar
from repro.dfa.automaton import Dfa, Emission
from repro.errors import ParseError

__all__ = ["sequential_rows", "SequentialParser"]


def sequential_rows(data: bytes, dfa: Dfa,
                    strict: bool = False
                    ) -> tuple[list[list[bytes | None]], int, bool]:
    """Parse ``data`` into records of raw field values.

    Returns ``(records, final_state, trailing)``: one list per record, each
    entry the field's bytes or ``None`` for a field with no data symbols;
    the automaton's final state; and whether the last record was an
    unterminated trailing record (callers use the pair to align
    trailing-record rejection with the parallel parser).
    """
    records: list[list[bytes | None]] = []
    fields: list[bytes | None] = []
    buffer = bytearray()
    has_content = False  # any non-comment emission since last record end
    has_data = False     # any DATA symbol in the current field

    state = dfa.start_state
    invalid = dfa.invalid_state
    for offset, byte in enumerate(data):
        if invalid is not None and state == invalid:
            if strict:
                raise ParseError(
                    f"invalid state at byte {offset - 1}",
                    byte_offset=offset - 1)
            # The record that drove the automaton invalid — and everything
            # after it — is rejected, matching the parallel pipeline.
            fields = []
            buffer.clear()
            has_content = False
            break
        state, emission = dfa.step(state, byte)
        if emission is Emission.DATA:
            buffer.append(byte)
            has_data = True
            has_content = True
        elif emission is Emission.FIELD_DELIMITER:
            fields.append(bytes(buffer) if has_data else None)
            buffer.clear()
            has_data = False
            has_content = True
        elif emission is Emission.RECORD_DELIMITER:
            fields.append(bytes(buffer) if has_data else None)
            buffer.clear()
            has_data = False
            records.append(fields)
            fields = []
            has_content = False
        elif emission is Emission.CONTROL:
            has_content = True
        # COMMENT emissions: discarded, no content.

    if invalid is not None and state == invalid and strict:
        raise ParseError("invalid state at end of input")
    if strict and not dfa.is_accepting(state):
        raise ParseError(
            f"input ends in non-accepting state "
            f"{dfa.state_names[state]!r}")
    trailing = has_content
    if has_content:
        fields.append(bytes(buffer) if has_data else None)
        records.append(fields)
    return records, state, trailing


class SequentialParser:
    """Reference parser with the same options surface as ParPaRaw.

    Produces a :class:`~repro.columnar.table.Table` with semantics
    identical to :class:`~repro.core.parser.ParPaRawParser` (tested), via
    completely independent scalar code.
    """

    def __init__(self, options: ParseOptions | None = None):
        self.options = options if options is not None else ParseOptions()
        self._dfa = self.options.resolved_dfa()
        self._end_accepted = True
        self._has_trailing = False

    def parse_rows(self, data: bytes) -> list[list[bytes | None]]:
        """Raw rows (bytes per field, ``None`` for empty fields)."""
        raw = self._apply_skip_rows(data)
        rows, final_state, trailing = sequential_rows(
            raw, self._dfa, strict=self.options.strict)
        self._end_accepted = self._dfa.is_accepting(final_state)
        self._has_trailing = trailing
        if self.options.skip_records:
            rows = [r for i, r in enumerate(rows)
                    if i not in self.options.skip_records]
        return rows

    def parse(self, data: bytes) -> Table:
        """Typed, columnar output (the comparison target for tests)."""
        options = self.options
        raw_rows = self._apply_policy(self.parse_rows(data))

        if options.schema is not None:
            schema = options.schema
        else:
            width = max((len(r) for r in raw_rows), default=0)
            from repro.columnar.schema import DataType
            schema = Schema.all_strings(width)
        num_columns = len(schema)

        column_indexes = range(num_columns) if options.select_columns is None \
            else sorted(c for c in options.select_columns
                        if c < num_columns)
        columns = []
        fields_out = []
        for c in column_indexes:
            field = schema[c]
            values, rejects = self._column_values(field, raw_rows, c)
            column = Column.from_values(field, values)
            column.rejects = rejects
            columns.append(column)
            fields_out.append(field)
        return Table(Schema(fields_out), columns)

    # -- internals ------------------------------------------------------------

    def _apply_skip_rows(self, data: bytes) -> bytes:
        if not self.options.skip_rows:
            return data
        delim = self.options.dialect.record_delimiter
        lines = data.split(delim)
        # Re-join, keeping each surviving line's delimiter (the final
        # element is the unterminated tail).
        kept = [line + delim for i, line in enumerate(lines[:-1])
                if i not in self.options.skip_rows]
        if (len(lines) - 1) not in self.options.skip_rows:
            kept.append(lines[-1])
        return b"".join(kept)

    def _apply_policy(self, rows: list[list[bytes | None]]
                      ) -> list[list[bytes | None]]:
        options = self.options
        if options.schema is not None:
            expected = len(options.schema)
        else:
            expected = max((len(r) for r in rows), default=0)
        policy = options.column_count_policy
        if policy is ColumnCountPolicy.LENIENT:
            return rows
        # Align with the parallel pipeline: under REJECT/STRICT a truncated
        # trailing record (non-accepting end state) is also rejected.
        if not self._end_accepted and self._has_trailing and rows:
            rows = rows[:-1]
        if policy is ColumnCountPolicy.STRICT:
            for i, row in enumerate(rows):
                if len(row) != expected:
                    raise ParseError(
                        f"record {i} has {len(row)} fields, expected "
                        f"{expected}", record=i)
            return rows
        return [r for r in rows if len(r) == expected]

    def _column_values(self, field: Field,
                       rows: list[list[bytes | None]],
                       column: int) -> tuple[list[Any], int]:
        from repro.core.conversion import _effective_default
        default = _effective_default(field)
        null_literals = {lit.encode("utf-8")
                         for lit in self.options.null_literals}
        values: list[Any] = []
        rejects = 0
        for row in rows:
            text = row[column] if column < len(row) else None
            if text is None:
                values.append(default)
                continue
            if text in null_literals:
                values.append(None)
                continue
            value, ok = convert_scalar(field, text)
            if ok:
                values.append(value)
            else:
                rejects += 1
                values.append(None)
        return values, rejects
