"""Monotonic-clock span tracing.

A :class:`Span` is one named interval with attributes; a :class:`Tracer`
collects spans as work runs.  Timestamps come from ``time.perf_counter()``
(``CLOCK_MONOTONIC`` on Linux, which is system-wide), so spans recorded in
``ShardedExecutor`` worker processes land on the same timeline as the
parent's and the exported trace shows the true overlap.

Nesting is implicit: spans opened while another span is open on the same
tracer record their depth, and the Chrome ``trace_event`` viewer nests
complete events on one thread track by time containment.

The hot path is guarded by :attr:`Tracer.enabled`: callers check the flag
before building span names or attribute dicts, and the shared
:data:`NULL_TRACER` keeps the disabled cost to one attribute read.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER",
           "snapshot_spans"]


@dataclass
class Span:
    """One completed interval on the trace timeline."""

    #: Span name, e.g. ``"stage:convert"`` or ``"worker:tags"``.
    name: str
    #: ``time.perf_counter()`` seconds (or simulated seconds).
    start: float
    end: float
    #: Process that recorded the span.
    pid: int = 0
    #: Track the span renders on (a process id, or a resource name for
    #: simulated schedules — ``"HtD"``/``"GPU"``/``"DtH"``).
    tid: int | str = 0
    #: Nesting depth at record time (0 = top level).
    depth: int = 0
    #: Free-form attributes (numbers/strings), exported as trace args.
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects spans; cheap enough to thread through the pipeline.

    Example
    -------
    >>> tracer = Tracer()
    >>> with tracer.span("stage:tag", records=3):
    ...     pass
    >>> [s.name for s in tracer.spans]
    ['stage:tag']
    """

    #: Callers gate span construction on this flag.
    enabled: bool = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._depth = 0

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Record a span around the ``with`` body (monotonic clock)."""
        record = Span(name=name, start=time.perf_counter(), end=0.0,
                      pid=os.getpid(), tid=os.getpid(),
                      depth=self._depth, attrs=attrs)
        self._depth += 1
        try:
            yield record
        finally:
            self._depth -= 1
            record.end = time.perf_counter()
            self.spans.append(record)

    def add(self, span: Span) -> None:
        """Append an externally built span (simulators, merges)."""
        self.spans.append(span)

    def ingest(self, spans: list[tuple], pid: int) -> None:
        """Fold spans serialised by :func:`snapshot_spans` back in.

        Worker processes return their spans as plain tuples (cheap to
        pickle); the parent re-labels them with the worker's ``pid`` so
        each worker renders as its own process track.
        """
        for name, start, end, depth, attrs in spans:
            self.spans.append(Span(name=name, start=start, end=end,
                                   pid=pid, tid=pid, depth=depth,
                                   attrs=dict(attrs)))

    def clear(self) -> None:
        self.spans.clear()


class NullTracer(Tracer):
    """Disabled tracer: records nothing, costs one attribute check."""

    enabled = False

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        yield _NULL_SPAN

    def add(self, span: Span) -> None:
        pass

    def ingest(self, spans: list[tuple], pid: int) -> None:
        pass


_NULL_SPAN = Span(name="", start=0.0, end=0.0)

#: Shared disabled tracer — the default everywhere.
NULL_TRACER = NullTracer()


def snapshot_spans(tracer: Tracer) -> list[tuple]:
    """Spans as plain tuples for the trip across a process boundary."""
    return [(s.name, s.start, s.end, s.depth, tuple(s.attrs.items()))
            for s in tracer.spans]
