"""Exporters: Chrome ``trace_event`` JSON, text report, benchmark dicts.

The Chrome trace format (the JSON array flavour under a ``traceEvents``
key) is the least-common-denominator timeline format: ``chrome://tracing``
and Perfetto (https://ui.perfetto.dev) both open it directly.  Each span
becomes one complete event (``"ph": "X"``) with microsecond timestamps
rebased to the earliest span, plus ``"M"`` metadata events naming the
process/thread tracks.

:func:`validate_chrome_trace` checks the shape (used by the CI smoke
test); :func:`render_text_report` prints spans + metrics for terminals.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "render_text_report",
    "validate_chrome_trace",
]


def _track_ids(spans: list[Span]) -> dict[tuple, tuple[int, int]]:
    """Assign numeric (pid, tid) per distinct span track.

    Spans carry free-form ``pid``/``tid`` labels (a worker pid, or a
    resource name like ``"GPU"`` from the streaming simulator); the trace
    format wants numbers, so label tracks via metadata events instead.
    """
    tracks: dict[tuple, tuple[int, int]] = {}
    for span in spans:
        key = (span.pid, span.tid)
        if key not in tracks:
            pid = span.pid if isinstance(span.pid, int) else 1
            tracks[key] = (pid, len(tracks) + 1)
    return tracks


def chrome_trace(spans: Iterable[Span],
                 metrics: MetricsRegistry | None = None) -> dict[str, Any]:
    """Spans (+ optional metrics) as a Chrome ``trace_event`` document."""
    spans = list(spans)
    base = min((s.start for s in spans), default=0.0)
    tracks = _track_ids(spans)
    events: list[dict[str, Any]] = []
    for (pid_label, tid_label), (pid, tid) in tracks.items():
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_name",
                       "args": {"name": str(tid_label)}})
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "process_name",
                       "args": {"name": f"pid {pid_label}"}})
    for span in spans:
        pid, tid = tracks[(span.pid, span.tid)]
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.name.split(":", 1)[0],
            "ts": (span.start - base) * 1e6,
            "dur": span.duration * 1e6,
            "pid": pid,
            "tid": tid,
            "args": {str(k): v for k, v in span.attrs.items()},
        })
    doc: dict[str, Any] = {"traceEvents": events,
                           "displayTimeUnit": "ms"}
    if metrics is not None:
        doc["metrics"] = metrics.to_dict()
    return doc


def write_chrome_trace(path, spans: Iterable[Span],
                       metrics: MetricsRegistry | None = None) -> None:
    """Serialise :func:`chrome_trace` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans, metrics), handle, indent=1)


def validate_chrome_trace(doc: Any) -> list[str]:
    """Shape-check a trace document; returns problems (empty = valid).

    Checks the ``trace_event`` contract the viewers rely on: a
    ``traceEvents`` list whose ``"X"`` events carry ``name``/``ts``/
    ``dur``/``pid``/``tid`` with non-negative times.
    """
    problems: list[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document is not an object with a 'traceEvents' key"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            problems.append(f"event {i}: not an object with 'ph'")
            continue
        if event["ph"] == "X":
            for key in ("name", "ts", "dur", "pid", "tid"):
                if key not in event:
                    problems.append(f"event {i}: missing {key!r}")
            if not isinstance(event.get("ts"), (int, float)) \
                    or event.get("ts", 0) < 0:
                problems.append(f"event {i}: bad ts")
            if not isinstance(event.get("dur"), (int, float)) \
                    or event.get("dur", 0) < 0:
                problems.append(f"event {i}: bad dur")
    return problems


def render_text_report(tracer: Tracer | None = None,
                       metrics: MetricsRegistry | None = None,
                       width: int = 72) -> str:
    """Human-readable spans + metrics summary."""
    lines: list[str] = []
    spans = tracer.spans if tracer is not None else []
    if spans:
        base = min(s.start for s in spans)
        total = max(s.end for s in spans) - base
        lines.append("spans:")
        for span in sorted(spans, key=lambda s: (s.start, -s.duration)):
            indent = "  " * (span.depth + 1)
            track = f" [{span.tid}]" if span.tid != span.pid else ""
            share = f" {span.duration / total:5.1%}" if total > 0 else ""
            lines.append(f"{indent}{span.name:<{max(1, 30 - len(indent))}}"
                         f" {span.duration * 1e3:9.3f} ms{share}{track}")
    if metrics is not None:
        snapshot = metrics.to_dict()
        if snapshot["counters"]:
            lines.append("counters:")
            for name, value in sorted(snapshot["counters"].items()):
                lines.append(f"  {name:<32} {value:>14,}")
        if snapshot["gauges"]:
            lines.append("gauges:")
            for name, value in sorted(snapshot["gauges"].items()):
                lines.append(f"  {name:<32} {value:>14g}")
        if snapshot["histograms"]:
            lines.append("histograms:"
                         f"{'':<24}{'count':>8}{'total':>12}{'mean':>12}")
            for name, summary in sorted(snapshot["histograms"].items()):
                lines.append(
                    f"  {name:<32} {summary['count']:>7}"
                    f" {summary['total'] * 1e3:>10.3f}ms"
                    f" {summary['mean'] * 1e3:>10.3f}ms")
    return "\n".join(lines) if lines else "(no observability data)"
