"""Observability: tracing and metrics for the parsing pipeline.

The paper tells its performance story per stage — Figure 13's end-to-end
breakdown, Figure 12's fill/drain analysis, the §4.4 full-duplex PCIe
claim — so the reproduction needs per-stage attribution that survives
every execution layer: the stage pipeline, the serial and sharded
executors (including worker *processes*), and the streaming simulator.

Three pieces, all zero-dependency (this package sits at the kernel layer
of the layering DAG — anything may import it, it imports nothing):

* :class:`Tracer` — nested monotonic-clock spans with attributes.  The
  shared :data:`NULL_TRACER` is a disabled no-op, so the hot path pays a
  single attribute check when observability is off.
* :class:`MetricsRegistry` — counters, gauges and histogram summaries.
  Registries made in ``ShardedExecutor`` worker processes travel home as
  plain dicts (:meth:`MetricsRegistry.to_dict`) and fold into the parent
  with :meth:`MetricsRegistry.merge_dict` — the cross-process merge.
* exporters (:mod:`repro.obs.export`) — Chrome ``trace_event`` JSON
  (open in ``chrome://tracing`` or https://ui.perfetto.dev), a
  human-readable text report, and plain dicts for embedding in benchmark
  results.

See ``docs/OBSERVABILITY.md`` for the span model and metric names.
"""

from repro.obs.export import (
    chrome_trace,
    render_text_report,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "NULL_METRICS",
    "chrome_trace",
    "write_chrome_trace",
    "render_text_report",
    "validate_chrome_trace",
]
