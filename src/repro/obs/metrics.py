"""Counters, gauges and histogram summaries with cross-process merging.

The registry is deliberately tiny: metric recording sits on the parsing
hot path, so a counter bump is one dict update and histograms keep only
``count/total/min/max`` (enough for per-stage duration summaries without
storing every observation).

The interesting part is the merge.  ``ShardedExecutor`` workers populate
a *local* registry, ship it home as a plain dict (picklable under every
multiprocessing start method) and the parent folds it in:

* counters **sum** (three workers tagging 10 records each = 30 records);
* gauges take the **last written** value per key (workers namespace their
  keys by shard, so nothing collides silently);
* histograms merge summaries (counts add, totals add, min/min, max/max) —
  so worker-side stage durations *sum* into the parent's breakdown.

This makes serial-vs-sharded comparable by construction: both schedules
account every record/byte exactly once, so their counters must be equal
(property tested in ``tests/obs``).
"""

from __future__ import annotations

from typing import Any

__all__ = ["MetricsRegistry", "NULL_METRICS"]


class MetricsRegistry:
    """Named counters, gauges and histogram summaries.

    Example
    -------
    >>> metrics = MetricsRegistry()
    >>> metrics.count("records", 3)
    >>> metrics.observe("stage.tag.seconds", 0.25)
    >>> metrics.counters["records"]
    3
    """

    #: Callers gate metric recording on this flag.
    enabled: bool = True

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        #: name -> [count, total, min, max]
        self.histograms: dict[str, list[float]] = {}

    # -- recording ---------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + int(value)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (last write wins)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        value = float(value)
        summary = self.histograms.get(name)
        if summary is None:
            self.histograms[name] = [1, value, value, value]
        else:
            summary[0] += 1
            summary[1] += value
            summary[2] = min(summary[2], value)
            summary[3] = max(summary[3], value)

    # -- merging -----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's state into this one."""
        self.merge_dict(other.to_dict())

    def merge_dict(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`to_dict` snapshot in (the cross-process path)."""
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, summary in snapshot.get("histograms", {}).items():
            count, total, lo, hi = (summary["count"], summary["total"],
                                    summary["min"], summary["max"])
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = [count, total, lo, hi]
            else:
                mine[0] += count
                mine[1] += total
                mine[2] = min(mine[2], lo)
                mine[3] = max(mine[3], hi)

    # -- export ------------------------------------------------------------

    def histogram_totals(self, prefix: str = "",
                         suffix: str = "") -> dict[str, float]:
        """Histogram totals keyed by the name between the affixes.

        ``histogram_totals("stage.", ".seconds")`` returns measured
        seconds per stage — the shape the planner's calibration store
        ingests (:mod:`repro.plan.calibration`).
        """
        totals: dict[str, float] = {}
        for name, (_, total, _, _) in self.histograms.items():
            if name.startswith(prefix) and name.endswith(suffix) \
                    and len(name) > len(prefix) + len(suffix):
                totals[name[len(prefix):len(name) - len(suffix)]] = total
        return totals

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict snapshot (JSON- and pickle-friendly)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {"count": int(count), "total": total,
                       "min": lo, "max": hi,
                       "mean": total / count if count else 0.0}
                for name, (count, total, lo, hi) in self.histograms.items()
            },
        }

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


class _NullMetrics(MetricsRegistry):
    """Disabled registry: records nothing, costs one attribute check."""

    enabled = False

    def count(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def merge_dict(self, snapshot: dict[str, Any]) -> None:
        pass


#: Shared disabled registry — the default everywhere.
NULL_METRICS = _NullMetrics()
