"""Setuptools entry point.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` works in offline environments whose setuptools
predates built-in wheel support (the legacy editable path does not require
the ``wheel`` package).
"""

from setuptools import setup

setup()
