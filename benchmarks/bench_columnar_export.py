"""Columnar export sweep — fused zero-copy convert vs the copy path (§5).

ISSUE 6 fuses partition→convert: string columns become zero-copy slices
of the per-column CSS and fixed-width columns write their parsed values
straight into the output buffers.  This sweep quantifies that on the
fig13 workloads, three ways:

* **convert stage** — stage seconds through the parser timer with
  ``fused_convert`` on vs off (the copy path is the PR 5 behaviour), plus
  the ``convert.bytes.copied`` / ``convert.zero_copy_columns`` counters;
* **end-to-end** — total parse seconds and MB/s for both paths, and the
  Feather-style export (``write_feather``) seconds on the fused table;
* **baselines** — stdlib ``csv`` row materialisation always, pandas and
  pyarrow CSV readers when importable (they are not dependencies).

Two artefacts:

* ``BENCH_columnar.json`` at the repo root — machine-readable rows plus
  the PR 5 convert-stage baseline, backing the acceptance criterion
  (fused convert stage faster than the copy path on yelp and taxi);
* ``benchmarks/results/columnar_export.txt`` — human-readable table.

Timing discipline: best-of-N on the parser's per-stage timer for stage
cells and on ``perf_counter`` for whole-call cells.  Runnable standalone
for the check.sh smoke:

    python benchmarks/bench_columnar_export.py --bytes 131072 --repeats 2
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro import Dialect, ParPaRawParser, ParseOptions
from repro.baselines import stdlib_csv_rows
from repro.columnar import write_feather
from repro.obs import MetricsRegistry
from repro.workloads import generate_taxi_like, generate_yelp_like

MB = 1024 ** 2
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_columnar.json"

NO_CR = Dialect(strip_carriage_return=False)

#: PR 5 convert stage seconds at 1 MB (measured via the copy path, which
#: is the PR 5 convert verbatim) — the baseline the fused path is gated
#: against.
PR5_CONVERT_SECONDS = {"yelp": 0.014, "taxi": 0.0157}


def time_call(func, repeats: int) -> float:
    func()                                          # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def time_path(data: bytes, fused: bool, repeats: int) -> dict:
    """Best-of-``repeats`` cell for one fused/copy parser configuration."""
    metrics = MetricsRegistry()
    options = ParseOptions(dialect=NO_CR, fused_convert=fused)
    parser = ParPaRawParser(options, metrics=metrics)
    parser.parse(data)                              # warm-up
    best: dict[str, float] | None = None
    for _ in range(repeats):
        totals = parser.parse(data).timer.totals()
        if best is None or totals["convert"] < best["convert"]:
            best = totals
    assert best is not None
    total = sum(best.values())
    counters = metrics.counters
    per_parse = 1 + repeats                          # warm-up + timed runs
    return {
        "path": "fused" if fused else "copy",
        "convert_seconds": round(best["convert"], 6),
        "total_seconds": round(total, 6),
        "mb_per_s": round(len(data) / MB / total, 2),
        "bytes_copied": counters.get("convert.bytes.copied", 0)
        // per_parse,
        "zero_copy_columns": counters.get("convert.zero_copy_columns", 0)
        // per_parse,
    }


def baseline_rows(data: bytes, repeats: int) -> list[dict]:
    import io

    rows = [{
        "baseline": "stdlib-csv",
        "seconds": round(time_call(
            lambda: stdlib_csv_rows(data), repeats), 6),
    }]
    try:
        import pandas
        rows.append({"baseline": "pandas", "seconds": round(time_call(
            lambda: pandas.read_csv(io.BytesIO(data), header=None),
            repeats), 6)})
    except ImportError:
        rows.append({"baseline": "pandas", "seconds": None})
    try:
        import pyarrow.csv as pacsv
        rows.append({"baseline": "pyarrow", "seconds": round(time_call(
            lambda: pacsv.read_csv(io.BytesIO(data)), repeats), 6)})
    except ImportError:
        rows.append({"baseline": "pyarrow", "seconds": None})
    return rows


def sweep(workloads: dict[str, bytes], repeats: int) -> dict:
    path_rows, baseline_list = [], []
    for name, data in workloads.items():
        for fused in (True, False):
            row = time_path(data, fused, repeats)
            row["workload"] = name
            row["input_bytes"] = len(data)
            path_rows.append(row)
        table = ParPaRawParser(
            ParseOptions(dialect=NO_CR)).parse(data).table
        path_rows.append({
            "workload": name, "path": "write_feather",
            "convert_seconds": None,
            "total_seconds": round(time_call(
                lambda t=table: write_feather(t), repeats), 6),
            "mb_per_s": None, "bytes_copied": None,
            "zero_copy_columns": None, "input_bytes": len(data),
        })
        for row in baseline_rows(data, repeats):
            row["workload"] = name
            baseline_list.append(row)
    return {"path_rows": path_rows, "baseline_rows": baseline_list}


def report_lines(result: dict, full_scale: bool) -> list[str]:
    lines = [f"{'workload':>10} {'path':>14} {'convert (ms)':>13} "
             f"{'total (ms)':>11} {'MB/s':>8} {'copied (B)':>11} "
             f"{'0copy cols':>11} {'vs copy':>8}"]
    path_rows = result["path_rows"]
    for workload in dict.fromkeys(r["workload"] for r in path_rows):
        group = [r for r in path_rows if r["workload"] == workload]
        copy = next(r for r in group if r["path"] == "copy")
        for r in group:
            convert = ("-" if r["convert_seconds"] is None
                       else f"{r['convert_seconds'] * 1e3:.2f}")
            vs_copy = ("     -" if r["convert_seconds"] is None
                       else f"{copy['convert_seconds'] / r['convert_seconds']:7.2f}x")
            mb = "-" if r["mb_per_s"] is None else f"{r['mb_per_s']:.1f}"
            copied = ("-" if r["bytes_copied"] is None
                      else str(r["bytes_copied"]))
            zc = ("-" if r["zero_copy_columns"] is None
                  else str(r["zero_copy_columns"]))
            lines.append(
                f"{workload:>10} {r['path']:>14} {convert:>13} "
                f"{r['total_seconds'] * 1e3:11.2f} {mb:>8} {copied:>11} "
                f"{zc:>11} {vs_copy:>8}")
    lines.append("")
    lines.append(f"{'workload':>10} {'baseline':>12} {'ms':>9}")
    for r in result["baseline_rows"]:
        ms = ("   (absent)" if r["seconds"] is None
              else f"{r['seconds'] * 1e3:9.2f}")
        lines.append(f"{r['workload']:>10} {r['baseline']:>12} {ms}")
    if full_scale:
        lines.append("")
        lines.append("vs copy = copy-path convert stage seconds / this "
                     "row's convert stage (PR 5 baseline: "
                     f"{PR5_CONVERT_SECONDS})")
    return lines


def run(workloads: dict[str, bytes], repeats: int,
        json_path: pathlib.Path, full_scale: bool) -> dict:
    result = sweep(workloads, repeats)
    json_path.write_text(json.dumps({
        "benchmark": "columnar_export_sweep",
        "chunk_size": ParseOptions().chunk_size,
        "pr5_convert_seconds": PR5_CONVERT_SECONDS if full_scale
        else None,
        "path_rows": result["path_rows"],
        "baseline_rows": result["baseline_rows"],
    }, indent=2) + "\n")
    return result


# -- pytest entry points ------------------------------------------------------

def test_columnar_export_sweep(results_dir):
    workloads = {"yelp": generate_yelp_like(1 * MB, seed=7),
                 "taxi": generate_taxi_like(1 * MB, seed=11)}
    result = run(workloads, repeats=5, json_path=BENCH_JSON,
                 full_scale=True)

    from conftest import write_report
    write_report(results_dir / "columnar_export.txt",
                 "Columnar export: fused zero-copy vs copy path (1 MB)",
                 report_lines(result, full_scale=True))

    # Acceptance (ISSUE 6): the fused path reduces convert-stage seconds
    # on yelp and taxi, and string columns really are zero-copy.
    for workload in workloads:
        group = {r["path"]: r for r in result["path_rows"]
                 if r["workload"] == workload}
        assert group["fused"]["convert_seconds"] \
            < group["copy"]["convert_seconds"]
        assert group["fused"]["zero_copy_columns"] > 0
        assert group["fused"]["bytes_copied"] \
            < group["copy"]["bytes_copied"]


# -- standalone smoke (scripts/check.sh) --------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=1 * MB)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", type=pathlib.Path, default=BENCH_JSON)
    args = parser.parse_args(argv)

    workloads = {"yelp": generate_yelp_like(args.bytes, seed=7),
                 "taxi": generate_taxi_like(args.bytes, seed=11)}
    full_scale = args.bytes >= 1 * MB
    result = run(workloads, args.repeats, args.out, full_scale)
    print("\n".join(report_lines(result, full_scale)))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
