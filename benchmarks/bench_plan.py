"""`--plan auto` vs fixed configurations — the planner acceptance bench.

For each fig13 workload, times a grid of fixed knob settings (the paper
default, smaller/larger chunks, narrow strides, forced radix partition)
against the self-tuning path: ``Planner.refine`` runs a few calibration
parses (planning cost, excluded from the steady state like every other
cell's warm-up), then the chosen plan is timed exactly like the fixed
cells.  Two artefacts:

* ``BENCH_plan.json`` at the repo root — rows
  ``{workload, config, chunk, stride, partition, seconds, mb_per_s}``
  plus the auto cell's full :class:`~repro.plan.PlanDecision` dict
  (candidates, scores, loser reasons) so the committed numbers carry
  their own rationale;
* ``benchmarks/results/plan_auto.txt`` — the human-readable table
  backing the acceptance criterion (auto ≥ every fixed config on every
  workload, strictly better than the default on at least one).

Timing discipline follows ``bench_kernels.py`` (warm-up parse to build
k-gram tables, then best-of-N on the *stage timers* — all stages, since
the planner trades chunking, striding and partition work against each
other) with one addition: the cells of one workload are timed
round-robin, one parse of every config per round, so slow periods of a
shared machine bias every config equally instead of whichever cell they
landed on.  Runnable standalone for the check.sh smoke:

    python benchmarks/bench_plan.py --bytes 131072 --repeats 2
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro import Dialect, ParPaRawParser, ParseOptions
from repro.core.options import PartitionStrategy, TaggingImpl
from repro.kernels import clear_cache
from repro.kernels.strided import resolve_stride
from repro.plan import Planner
from repro.workloads import generate_taxi_like, generate_yelp_like

MB = 1024 ** 2
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_plan.json"

NO_CR = Dialect(strip_carriage_return=False)
PIPE_NO_CR = Dialect(delimiter=b"|", quote=None, strip_carriage_return=False)

#: The fixed grid auto competes against.  Explicit strides bring a
#: budget their table plan fits (ParseOptions rejects over-budget
#: strides up front); everything else keeps production defaults.
FIXED_CONFIGS: tuple[tuple[str, dict], ...] = (
    ("default", {}),
    ("chunk-16", {"chunk_size": 16}),
    ("chunk-64", {"chunk_size": 64}),
    ("stride-1", {"kernel_stride": 1}),
    ("stride-2", {"kernel_stride": 2, "kernel_table_budget": 1 << 30}),
    ("radix", {"partition_strategy": "radix"}),
)


def generate_logs_like(target_bytes: int, seed: int = 13) -> bytes:
    """Pipe-delimited log lines (taxi rows re-delimited — same field
    statistics, no quoting)."""
    return generate_taxi_like(target_bytes, seed=seed).replace(b",", b"|")


def _resolved_key(options: ParseOptions) -> tuple:
    """The configuration a parse with ``options`` actually runs: chunk
    size, the stride the table budget admits, and the partition strategy
    the tagging implementation selects.  Cells that resolve identically
    (e.g. auto choosing exactly the chunk-64 grid point) are the same
    measurement, not two noisy ones."""
    stride = resolve_stride(options.kernel_stride, options._sweep_dfa(),
                            options.kernel_table_budget)
    if options.partition_strategy is not None:
        strategy = options.partition_strategy.value
    else:
        strategy = PartitionStrategy.FIELD_RUN.value \
            if options.tagging_impl is TaggingImpl.GLOBAL \
            else PartitionStrategy.RADIX.value
    return options.chunk_size, stride, strategy


def bench_workload(name: str, dialect: Dialect, data: bytes,
                   repeats: int, rounds: int) -> list[dict]:
    # The self-tuning path first: refine() parses a handful of candidate
    # configurations to calibrate the cost model against this machine
    # (planning cost, outside the steady state like every cell's
    # warm-up), then the calibrated winner joins the timing grid.
    planner = Planner()
    decision = planner.refine(
        data, ParseOptions(dialect=dialect, plan="auto"), rounds=rounds)

    cells = [(config, ParseOptions(dialect=dialect, **knobs))
             for config, knobs in FIXED_CONFIGS]
    cells.append(("auto", decision.chosen))

    # One workload's cells share the table cache (at most a few distinct
    # (dfa, k) pairs, well under the LRU capacity), so a single warm-up
    # pass leaves every parser at steady state.  One parser per distinct
    # *resolved* configuration, timed round-robin.
    clear_cache()
    parsers = {key: ParPaRawParser(options)
               for config, options in cells
               for key in (_resolved_key(options),)}
    for parser in parsers.values():
        parser.parse(data)
    best: dict[tuple, float] = {}
    for _ in range(repeats):
        for key, parser in parsers.items():
            total = sum(parser.parse(data).timer.totals().values())
            if key not in best or total < best[key]:
                best[key] = total

    rows = []
    for config, options in cells:
        chunk, stride, strategy = _resolved_key(options)
        seconds = best[(chunk, stride, strategy)]
        rows.append({
            "workload": name, "config": config, "input_bytes": len(data),
            "chunk": chunk, "stride": stride, "partition": strategy,
            "seconds": round(seconds, 6),
            "mb_per_s": round(len(data) / MB / seconds, 2),
            **({"decision": decision.as_dict()} if config == "auto"
               else {}),
        })
    return rows


def report_lines(rows: list[dict]) -> list[str]:
    lines = [f"{'workload':>10} {'config':>10} {'chunk':>6} {'stride':>7} "
             f"{'partition':>10} {'total (ms)':>11} {'MB/s':>8} "
             f"{'vs default':>10}"]
    for workload in dict.fromkeys(r["workload"] for r in rows):
        group = [r for r in rows if r["workload"] == workload]
        base = next(r for r in group if r["config"] == "default")
        for r in group:
            lines.append(
                f"{workload:>10} {r['config']:>10} {r['chunk']:>6} "
                f"{r['stride']:>7} {r['partition']:>10} "
                f"{r['seconds'] * 1e3:11.2f} {r['mb_per_s']:8.1f} "
                f"{base['seconds'] / r['seconds']:9.2f}x")
        auto = next(r for r in group if r["config"] == "auto")
        chosen = auto["decision"]["chosen"]
        lines.append(f"{'':>10} auto chose chunk={chosen['chunk_size']} "
                     f"stride={chosen['kernel_stride']} "
                     f"partition={chosen['partition_strategy']} "
                     f"(fingerprint {auto['decision']['fingerprint']})")
    lines.append("")
    lines.append("auto = Planner.refine() calibrates the cost model on a "
                 "few candidate parses, then times the chosen plan;")
    lines.append("vs default = default config total / this row's total")
    return lines


def default_workloads(target_bytes: int) -> dict:
    return {"yelp": (NO_CR, generate_yelp_like(target_bytes, seed=7)),
            "taxi": (NO_CR, generate_taxi_like(target_bytes, seed=11)),
            "logs": (PIPE_NO_CR, generate_logs_like(target_bytes, seed=13))}


def run(workloads: dict[str, tuple[Dialect, bytes]], repeats: int,
        rounds: int, json_path: pathlib.Path) -> list[dict]:
    rows = []
    for name, (dialect, data) in workloads.items():
        rows.extend(bench_workload(name, dialect, data, repeats, rounds))
    json_path.write_text(json.dumps({
        "benchmark": "plan_auto_vs_fixed",
        "fixed_configs": [name for name, _ in FIXED_CONFIGS],
        "refine_rounds": rounds,
        "rows": rows,
    }, indent=2) + "\n")
    return rows


# -- pytest entry points ------------------------------------------------------

def test_plan_auto_vs_fixed(results_dir):
    workloads = default_workloads(1 * MB)
    rows = run(workloads, repeats=7, rounds=4, json_path=BENCH_JSON)

    from conftest import write_report
    write_report(results_dir / "plan_auto.txt",
                 "Self-tuning planner: --plan auto vs fixed configs (1 MB)",
                 report_lines(rows))

    # The committed artefacts carry the measured margins; here we assert
    # floors loose enough that machine noise cannot flake the gate.
    for workload in workloads:
        group = {r["config"]: r for r in rows
                 if r["workload"] == workload}
        best_fixed = min(r["seconds"] for c, r in group.items()
                         if c != "auto")
        assert group["auto"]["seconds"] <= best_fixed * 1.10, (
            f"auto lost to a fixed config on {workload}")
        # The chosen plan is concrete and the decision is self-describing.
        chosen = group["auto"]["decision"]["chosen"]
        assert chosen["chunk_size"] == group["auto"]["chunk"]
        assert group["auto"]["decision"]["rationale"]


# -- standalone smoke (scripts/check.sh) --------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=1 * MB)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--out", type=pathlib.Path, default=BENCH_JSON)
    args = parser.parse_args(argv)

    rows = run(default_workloads(args.bytes), args.repeats, args.rounds,
               args.out)
    print("\n".join(report_lines(rows)))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
