"""Partition-strategy sweep — field-run vs stable radix sort (§3.3).

PR 4's strided kernels left the partition stage as the pipeline's top
serial-executor cost (BENCH_kernels.json: yelp 0.134 s, taxi 0.170 s at
1 MB).  This sweep measures the field-run replacement on the fig13
workloads at the paper's default chunk size, two ways:

* **stage sweep** — the full partition stage through the parser timer
  for each ``--partition-strategy`` (radix / field-run / auto), plus
  end-to-end MB/s;
* **kernel sweep** — ``partition_by_column`` at radix_bits ∈ {1,2,4,8}
  against ``partition_field_runs`` (with and without the tagger's
  delimiter positions) on the identical validate-stage inputs, so the
  strategies are compared on the exact same arrays.

Two artefacts:

* ``BENCH_partition.json`` at the repo root — machine-readable rows plus
  the PR 4 baseline stage seconds, backing the acceptance criterion
  (auto strategy >= 3x faster than the PR 4 partition stage);
* ``benchmarks/results/partition_strategy.txt`` — the human-readable
  sweep table.

Timing discipline: best-of-N on the *partition stage timer* (stage
sweep) and on ``perf_counter`` around the bare kernel (kernel sweep), so
noise on the fixed stages cannot masquerade as a partition win.
Runnable standalone for the check.sh smoke:

    python benchmarks/bench_partition.py --bytes 131072 --repeats 2
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro import Dialect, ParPaRawParser, ParseOptions, SerialExecutor
from repro.core.partition import partition_by_column, partition_field_runs
from repro.core.stages import PipelineContext, RawInput
from repro.dfa import dialect_dfa
from repro.utils.timing import StepTimer
from repro.workloads import generate_taxi_like, generate_yelp_like

MB = 1024 ** 2
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_partition.json"

NO_CR = Dialect(strip_carriage_return=False)
STRATEGIES: tuple[str, ...] = ("radix", "field-run", "auto")
RADIX_BITS: tuple[int, ...] = (1, 2, 4, 8)

#: PR 4 partition stage seconds at 1 MB (BENCH_kernels.json, auto
#: stride) — the baseline the acceptance criterion compares against.
PR4_BASELINE_SECONDS = {"yelp": 0.13362, "taxi": 0.169909}


def time_strategy(data: bytes, strategy: str, repeats: int) -> dict:
    """Best-of-``repeats`` stage seconds for one parser-level cell."""
    options = ParseOptions(
        dialect=NO_CR,
        partition_strategy=None if strategy == "auto" else strategy)
    parser = ParPaRawParser(options)
    parser.parse(data)                              # warm-up
    best: dict[str, float] | None = None
    for _ in range(repeats):
        totals = parser.parse(data).timer.totals()
        if best is None or totals["partition"] < best["partition"]:
            best = totals
    assert best is not None
    total = sum(best.values())
    return {
        "strategy": strategy,
        "partition_seconds": round(best["partition"], 6),
        "total_seconds": round(total, 6),
        "mb_per_s": round(len(data) / MB / total, 2),
    }


def validate_stage_inputs(data: bytes) -> dict:
    """The partition stage's inputs: one validate-stage run per workload."""
    import numpy as np

    options = ParseOptions(dialect=NO_CR)
    ctx = PipelineContext(options=options, dfa=dialect_dfa(NO_CR),
                          timer=StepTimer())
    raw = np.frombuffer(data, dtype=np.uint8)
    with SerialExecutor() as executor:
        payload = executor.execute(
            ctx, RawInput(raw=raw, input_bytes=raw.size),
            until="validate")
    return {
        "data": payload.data_ext,
        "keep": payload.keep,
        "column_ids": payload.col_ids,
        "record_ids": payload.rec_ids,
        "num_columns": payload.num_columns,
        "delim_positions": payload.delim_positions,
    }


def time_kernel(func, repeats: int) -> float:
    func()                                          # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def kernel_sweep(data: bytes, repeats: int) -> list[dict]:
    inp = validate_stage_inputs(data)
    args = (inp["data"], inp["keep"], inp["column_ids"],
            inp["record_ids"], inp["num_columns"])
    rows = []
    for bits in RADIX_BITS:
        seconds = time_kernel(
            lambda: partition_by_column(*args, radix_bits=bits), repeats)
        rows.append({"kernel": "radix", "radix_bits": bits,
                     "seconds": round(seconds, 6)})
    seconds = time_kernel(lambda: partition_field_runs(*args), repeats)
    rows.append({"kernel": "field-run (boundary detect)",
                 "radix_bits": None, "seconds": round(seconds, 6)})
    seconds = time_kernel(
        lambda: partition_field_runs(
            *args, delim_positions=inp["delim_positions"]), repeats)
    rows.append({"kernel": "field-run (delim positions)",
                 "radix_bits": None, "seconds": round(seconds, 6)})
    return rows


def sweep(workloads: dict[str, bytes], repeats: int) -> dict:
    stage_rows, kernel_rows = [], []
    for name, data in workloads.items():
        for strategy in STRATEGIES:
            row = time_strategy(data, strategy, repeats)
            row["workload"] = name
            row["input_bytes"] = len(data)
            stage_rows.append(row)
        for row in kernel_sweep(data, repeats):
            row["workload"] = name
            kernel_rows.append(row)
    return {"stage_rows": stage_rows, "kernel_rows": kernel_rows}


def report_lines(result: dict, full_scale: bool) -> list[str]:
    lines = [f"{'workload':>10} {'strategy':>10} {'partition (ms)':>15} "
             f"{'total (ms)':>11} {'MB/s':>8} {'vs radix':>9} "
             f"{'vs PR4':>7}"]
    stage_rows = result["stage_rows"]
    for workload in dict.fromkeys(r["workload"] for r in stage_rows):
        group = [r for r in stage_rows if r["workload"] == workload]
        radix = next(r for r in group if r["strategy"] == "radix")
        pr4 = PR4_BASELINE_SECONDS.get(workload) if full_scale else None
        for r in group:
            vs_radix = radix["partition_seconds"] / r["partition_seconds"]
            vs_pr4 = (f"{pr4 / r['partition_seconds']:6.2f}x"
                      if pr4 else "    n/a")
            lines.append(
                f"{workload:>10} {r['strategy']:>10} "
                f"{r['partition_seconds'] * 1e3:15.2f} "
                f"{r['total_seconds'] * 1e3:11.2f} "
                f"{r['mb_per_s']:8.1f} {vs_radix:8.2f}x {vs_pr4}")
    lines.append("")
    lines.append(f"{'workload':>10} {'kernel':>28} {'bits':>5} "
                 f"{'ms':>9}")
    for r in result["kernel_rows"]:
        bits = "-" if r["radix_bits"] is None else str(r["radix_bits"])
        lines.append(f"{r['workload']:>10} {r['kernel']:>28} {bits:>5} "
                     f"{r['seconds'] * 1e3:9.2f}")
    lines.append("")
    lines.append("vs PR4 = PR 4 partition stage seconds (strided-kernel "
                 "sweep, auto stride) / this row's partition stage")
    return lines


def run(workloads: dict[str, bytes], repeats: int,
        json_path: pathlib.Path, full_scale: bool) -> dict:
    result = sweep(workloads, repeats)
    json_path.write_text(json.dumps({
        "benchmark": "partition_strategy_sweep",
        "chunk_size": ParseOptions().chunk_size,
        "pr4_baseline_seconds": PR4_BASELINE_SECONDS if full_scale
        else None,
        "stage_rows": result["stage_rows"],
        "kernel_rows": result["kernel_rows"],
    }, indent=2) + "\n")
    return result


# -- pytest entry points ------------------------------------------------------

def test_partition_sweep(results_dir):
    workloads = {"yelp": generate_yelp_like(1 * MB, seed=7),
                 "taxi": generate_taxi_like(1 * MB, seed=11)}
    result = run(workloads, repeats=5, json_path=BENCH_JSON,
                 full_scale=True)

    from conftest import write_report
    write_report(results_dir / "partition_strategy.txt",
                 "Partition strategies: stage time by strategy (1 MB)",
                 report_lines(result, full_scale=True))

    # The committed artefacts carry the measured >=3x vs the PR 4
    # baseline; here we assert conservative floors so machine noise
    # cannot flake the gate.
    for workload in workloads:
        group = {r["strategy"]: r for r in result["stage_rows"]
                 if r["workload"] == workload}
        assert group["auto"]["partition_seconds"] \
            < group["radix"]["partition_seconds"] / 1.3
        assert group["auto"]["partition_seconds"] \
            < PR4_BASELINE_SECONDS[workload] / 2.0


# -- standalone smoke (scripts/check.sh) --------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=1 * MB)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", type=pathlib.Path, default=BENCH_JSON)
    args = parser.parse_args(argv)

    workloads = {"yelp": generate_yelp_like(args.bytes, seed=7),
                 "taxi": generate_taxi_like(args.bytes, seed=11)}
    full_scale = args.bytes >= 1 * MB
    result = run(workloads, args.repeats, args.out, full_scale)
    print("\n".join(report_lines(result, full_scale)))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
