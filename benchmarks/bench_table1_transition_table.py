"""Table 1 — the compressed transition table with symbol groups.

Structural artefact: verifies and prints the exact RFC 4180 table the
paper shows, and benchmarks the two operations it enables — the multi
-instance DFA simulation (phase 1) and table compression itself.
"""

import numpy as np
import pytest

from repro.core.chunking import chunk_groups
from repro.core.context import compute_transition_vectors
from repro.dfa import rfc4180_dfa
from repro.dfa.compression import expand_table, group_symbols
from repro.workloads import generate_yelp_like

from conftest import write_report

PAPER_TABLE = {
    "EOL": ("EOR", "ENC", "EOR", "EOR", "EOR", "INV"),
    "QUOTE": ("ENC", "ESC", "INV", "ENC", "ENC", "INV"),
    "DELIM": ("EOF", "ENC", "EOF", "EOF", "EOF", "INV"),
    "OTHER": ("FLD", "ENC", "FLD", "FLD", "INV", "INV"),
}


def test_table1_report(benchmark, results_dir):
    dfa = rfc4180_dfa()

    def compress():
        return group_symbols(expand_table(dfa))

    compressed = benchmark(compress)
    assert compressed.num_groups == 4

    for g, gname in enumerate(dfa.group_names):
        row = tuple(dfa.state_names[int(dfa.transitions[g, s])]
                    for s in range(dfa.num_states))
        assert row == PAPER_TABLE[gname], gname

    lines = dfa.format_transition_table().splitlines()
    lines.append("")
    lines.append("matches the paper's Table 1 exactly; 256-row table "
                 "compresses to 4 symbol groups")
    write_report(results_dir / "table1_transition_table.txt",
                 "Table 1: RFC 4180 transition table", lines)


def test_multi_instance_simulation(benchmark, yelp_1mb):
    """Phase 1 throughput: |S| DFA instances per thread over real data."""
    dfa = rfc4180_dfa()
    data = np.frombuffer(yelp_1mb, dtype=np.uint8)
    groups, chunking, padded = chunk_groups(data, dfa, 31)
    vectors = benchmark(compute_transition_vectors, groups, padded)
    assert vectors.shape == (chunking.num_chunks, 6)


def test_single_instance_simulation(benchmark):
    """Reference scalar simulation cost (for the work-increase factor the
    paper's contribution (4) concedes: |S| instances vs one)."""
    dfa = rfc4180_dfa()
    data = generate_yelp_like(64 * 1024, seed=7)
    benchmark(dfa.simulate, data)
