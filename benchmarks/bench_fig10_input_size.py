"""Figure 10 — parsing rate as a function of the input size.

Paper: on-GPU rate grows with input size (kernel-launch overhead amortises)
from ~2.1-2.7 GB/s at 1 MB to ~14.2 GB/s at 512 MB (yelp).

Here: wall-clock parsing rate of the real pipeline over a size sweep (the
same *shape*: rate grows and flattens), plus the paper-scale curve on the
device model, written to ``results/fig10_input_size.txt``.
"""

import pytest

from repro import ParPaRawParser, ParseOptions
from repro.gpusim.cost_model import PipelineCostModel, WorkloadStats
from repro.workloads import generate_yelp_like

from conftest import MB, run_benchmark, write_report


@pytest.mark.parametrize("size_kb", [64, 256, 1024])
def test_wallclock_rate_yelp(benchmark, yelp_schema, size_kb):
    data = generate_yelp_like(size_kb * 1024, seed=7)
    parser = ParPaRawParser(ParseOptions(schema=yelp_schema))
    result = run_benchmark(benchmark, parser.parse, data)
    assert result.num_rows > 0


def test_wallclock_rate_grows_with_size(benchmark, yelp_schema):
    """The measured counterpart of Figure 10's left edge: a very small
    parse pays fixed per-parse overhead, so its rate trails a larger one.

    The Python substrate's fixed costs are milliseconds, not the GPU's
    5-10 µs kernel launches, and vectorised-op efficiency varies with
    array size, so this wall-clock check uses a tiny input and a tolerant
    bound; the authoritative Figure 10 *shape* claim is the simulated
    test below.
    """
    import time

    def measure():
        rates = []
        for size in (2 * 1024, 256 * 1024):
            data = generate_yelp_like(size, seed=7)
            parser = ParPaRawParser(ParseOptions(schema=yelp_schema))
            parser.parse(data)  # warm up
            samples = []
            for _ in range(5):
                start = time.perf_counter()
                parser.parse(data)
                samples.append(time.perf_counter() - start)
            rates.append(len(data) / sorted(samples)[2])  # median
        return rates

    rates = run_benchmark(benchmark, measure, rounds=1)
    assert rates[-1] > 0.8 * rates[0]


def test_figure10_simulated(benchmark, results_dir):
    model = PipelineCostModel()
    sizes_mb = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]

    def sweep():
        out = {}
        for factory, name in ((WorkloadStats.yelp_like, "yelp"),
                              (WorkloadStats.taxi_like, "taxi")):
            out[name] = [model.parsing_rate(factory(s * MB))
                         for s in sizes_mb]
        return out

    curves = benchmark(sweep)

    lines = [f"{'size':>7} {'yelp GB/s':>10} {'taxi GB/s':>10}"]
    for i, size in enumerate(sizes_mb):
        lines.append(f"{size:>5}MB {curves['yelp'][i] / 1e9:>10.2f} "
                     f"{curves['taxi'][i] / 1e9:>10.2f}")
    lines.append("")
    lines.append("paper: yelp ~2.7 GB/s @1MB, ~9.75 GB/s @10MB, "
                 "peak 14.2 GB/s; taxi ~2.1 GB/s @1MB")
    write_report(results_dir / "fig10_input_size.txt",
                 "Figure 10: parsing rate vs input size", lines)

    for name in ("yelp", "taxi"):
        series = curves[name]
        assert all(a < b for a, b in zip(series, series[1:])), name
    assert 1.8e9 < curves["yelp"][0] < 4.5e9
    assert curves["taxi"][0] < curves["yelp"][0]
