"""Figure 8 — the multi-fragment in-register array.

Structural artefact: prints the figure's 10x5-bit example geometry
(available bits, fragment width, fragment count) and its logical/physical
views; benchmarks MFIRA-backed DFA simulation against the plain-array
formulation it substitutes for (registers cannot be indexed dynamically on
a GPU; a Python list stands in for "if they could").
"""

import pytest

from repro.dfa import rfc4180_dfa
from repro.gpusim.mfira import Mfira
from repro.gpusim.thread_sim import GpuThread
from repro.workloads import generate_yelp_like

from conftest import write_report

FIGURE8_VALUES = [5, 7, 31, 20, 10, 0, 26, 3, 15, 16]


def test_figure8_report(benchmark, results_dir):
    def build():
        return Mfira.from_values(FIGURE8_VALUES, item_bits=5)

    array = benchmark(build)
    assert array.to_list() == FIGURE8_VALUES

    lines = [
        f"capacity (num. items c):        {array.capacity}",
        f"bits per item b:                {array.item_bits}",
        f"avail. bits per item-fragment:  {array.available_bits}"
        "   (= floor(32 / c))",
        f"bits per item-fragment k:       {array.fragment_bits}"
        "   (= 2^floor(log2 a) -> shift addressing)",
        f"fragments ceil(b/k):            {array.num_fragments}",
        "",
        "logical view:  " + " ".join(f"{v:>2}" for v in FIGURE8_VALUES),
        "physical view (registers, low fragment first):",
    ]
    for r, register in enumerate(array.registers):
        lines.append(f"  r[{r}] = {register:#010x} = {register:>032b}")
    lines.append("")
    lines.append("matches the paper's Figure 8 parameters exactly "
                 "(10 items x 5 bits -> a=3, k=2, 3 fragments)")
    write_report(results_dir / "fig08_mfira.txt",
                 "Figure 8: multi-fragment in-register array", lines)

    assert array.available_bits == 3
    assert array.fragment_bits == 2
    assert array.num_fragments == 3


def test_mfira_backed_thread(benchmark):
    """Phase-1 DFA simulation through MFIRA + SWAR (the §4.5 kernel)."""
    dfa = rfc4180_dfa()
    chunk = generate_yelp_like(2_000, seed=7)[:1024]

    def run():
        return GpuThread(dfa).run(chunk)

    vector = benchmark(run)
    assert vector == dfa.transition_vector(chunk)


def test_plain_array_reference(benchmark):
    """The same simulation on a directly-indexed array — what MFIRA
    emulates within the register file's constraints."""
    dfa = rfc4180_dfa()
    chunk = generate_yelp_like(2_000, seed=7)[:1024]

    def run():
        vector = list(range(dfa.num_states))
        for byte in chunk:
            group = dfa.symbol_groups[byte]
            row = dfa.transitions[group]
            vector = [int(row[s]) for s in vector]
        return tuple(vector)

    vector = benchmark(run)
    assert vector == dfa.transition_vector(chunk)
