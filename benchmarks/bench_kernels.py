"""Strided-kernel sweep — the first entry in the BENCH_*.json trajectory.

Sweeps the kernel stride k ∈ {1, 2, 4, auto} over the fig13 workloads at
the paper's default chunk size and records the per-stage timer steps the
striding actually targets: ``parse`` (the STV sweep) and ``tag`` (the
emission sweep).  Two artefacts:

* ``BENCH_kernels.json`` at the repo root — machine-readable rows
  ``{workload, stride, seconds: {stage: s}, mb_per_s}`` for trend
  tracking across commits;
* ``benchmarks/results/kernels_stride.txt`` — the human-readable
  before/after table backing the acceptance criterion (auto stride
  beats unit stride on stv+tag).

Timing discipline: best-of-N on the *stage timers*, not wall clock, so
scheduler noise on the fixed stages (scan, convert) cannot masquerade as
a kernel win.  Runnable standalone for the check.sh smoke:

    python benchmarks/bench_kernels.py --bytes 131072 --repeats 2
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro import Dialect, ParPaRawParser, ParseOptions
from repro.kernels import clear_cache
from repro.workloads import generate_taxi_like, generate_yelp_like

MB = 1024 ** 2
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_kernels.json"

NO_CR = Dialect(strip_carriage_return=False)
STRIDES: tuple[int | None, ...] = (1, 2, 4, None)   # None = auto
HOT_STAGES = ("parse", "tag")


def _label(stride: int | None) -> str:
    return "auto" if stride is None else str(stride)


def time_stride(data: bytes, stride: int | None, repeats: int) -> dict:
    """Best-of-``repeats`` warm-cache stage seconds for one sweep cell.

    The first round pays the k-gram table build; best-of-N then reports
    the steady state the LRU cache provides to every later parse, shard,
    and streaming partition.
    """
    clear_cache()
    parser = ParPaRawParser(ParseOptions(dialect=NO_CR,
                                         kernel_stride=stride))
    parser.parse(data)                   # warm-up: builds + caches tables
    best: dict[str, float] | None = None
    for _ in range(repeats):
        totals = parser.parse(data).timer.totals()
        if best is None or sum(totals[s] for s in HOT_STAGES) \
                < sum(best[s] for s in HOT_STAGES):
            best = totals
    assert best is not None
    hot = sum(best[s] for s in HOT_STAGES)
    return {
        "stride": _label(stride),
        "seconds": {name: round(value, 6) for name, value in best.items()},
        "hot_seconds": round(hot, 6),
        "mb_per_s": round(len(data) / MB / hot, 2),
    }


def sweep(workloads: dict[str, bytes], repeats: int) -> list[dict]:
    rows = []
    for name, data in workloads.items():
        for stride in STRIDES:
            row = time_stride(data, stride, repeats)
            row["workload"] = name
            row["input_bytes"] = len(data)
            rows.append(row)
    return rows


def report_lines(rows: list[dict]) -> list[str]:
    lines = [f"{'workload':>10} {'stride':>6} {'stv (ms)':>9} "
             f"{'tag (ms)':>9} {'stv+tag':>9} {'MB/s':>8} {'speedup':>8}"]
    for workload in dict.fromkeys(r["workload"] for r in rows):
        group = [r for r in rows if r["workload"] == workload]
        base = next(r for r in group if r["stride"] == "1")
        for r in group:
            speedup = base["hot_seconds"] / r["hot_seconds"]
            lines.append(
                f"{workload:>10} {r['stride']:>6} "
                f"{r['seconds']['parse'] * 1e3:9.2f} "
                f"{r['seconds']['tag'] * 1e3:9.2f} "
                f"{r['hot_seconds'] * 1e3:9.2f} "
                f"{r['mb_per_s']:8.1f} {speedup:7.2f}x")
    lines.append("")
    lines.append("speedup = unit-stride (stv+tag) / this row's (stv+tag)")
    return lines


def run(workloads: dict[str, bytes], repeats: int,
        json_path: pathlib.Path) -> list[dict]:
    rows = sweep(workloads, repeats)
    json_path.write_text(json.dumps({
        "benchmark": "kernels_stride_sweep",
        "chunk_size": ParseOptions().chunk_size,
        "hot_stages": list(HOT_STAGES),
        "rows": rows,
    }, indent=2) + "\n")
    return rows


# -- pytest entry points ------------------------------------------------------

def test_stride_sweep(results_dir):
    workloads = {"yelp": generate_yelp_like(1 * MB, seed=7),
                 "taxi": generate_taxi_like(1 * MB, seed=11)}
    rows = run(workloads, repeats=5, json_path=BENCH_JSON)

    from conftest import write_report
    write_report(results_dir / "kernels_stride.txt",
                 "Strided kernels: stv+tag stage time by stride (1 MB)",
                 report_lines(rows))

    # The committed artefacts carry the measured >=1.8x; here we assert a
    # conservative floor so machine noise cannot flake the gate.
    for workload in workloads:
        group = {r["stride"]: r for r in rows
                 if r["workload"] == workload}
        assert group["auto"]["hot_seconds"] \
            < group["1"]["hot_seconds"] / 1.3


# -- standalone smoke (scripts/check.sh) --------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=1 * MB)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", type=pathlib.Path, default=BENCH_JSON)
    args = parser.parse_args(argv)

    workloads = {"yelp": generate_yelp_like(args.bytes, seed=7),
                 "taxi": generate_taxi_like(args.bytes, seed=11)}
    rows = run(workloads, args.repeats, args.out)
    print("\n".join(report_lines(rows)))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
