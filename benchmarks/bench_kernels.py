"""Strided-kernel sweep — the first entry in the BENCH_*.json trajectory.

Sweeps the kernel stride k ∈ {1, 2, 4, 8, auto} over the fig13 workloads
at the paper's default chunk size and records the per-stage timer steps
the striding actually targets: ``parse`` (the STV sweep) and ``tag`` (the
emission sweep).  Two artefacts:

* ``BENCH_kernels.json`` at the repo root — machine-readable rows
  ``{workload, stride, resolved_stride, seconds: {stage: s}, mb_per_s}``
  for trend tracking across commits;
* ``benchmarks/results/kernels_stride.txt`` — the human-readable
  before/after table backing the acceptance criterion (auto stride
  beats unit stride on stv+tag).

Workloads carry their own dialect: ``yelp``/``taxi`` are quoted CSV
(k=8 tables for their automaton outgrow the table budget, so auto stays
at k=4), while ``logs`` is pipe-delimited with no quoting — its automaton
minimises to a single state, the k=8 SWAR ladder fits in ~0.8 MB, and
auto resolves to 8.

Timing discipline: best-of-N on the *stage timers*, not wall clock, so
scheduler noise on the fixed stages (scan, convert) cannot masquerade as
a kernel win.  Runnable standalone for the check.sh smoke:

    python benchmarks/bench_kernels.py --bytes 131072 --repeats 2
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro import Dialect, ParPaRawParser, ParseOptions
from repro.kernels import clear_cache
from repro.obs import MetricsRegistry
from repro.workloads import generate_taxi_like, generate_yelp_like

MB = 1024 ** 2
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_kernels.json"

NO_CR = Dialect(strip_carriage_return=False)
#: Pipe-delimited, unquoted, no CR handling — the log-file shape whose
#: minimised automaton (1 state, 3 groups) unlocks the k=8 SWAR kernels.
PIPE_NO_CR = Dialect(delimiter=b"|", quote=None, strip_carriage_return=False)
STRIDES: tuple[int | None, ...] = (1, 2, 4, 8, None)   # None = auto
HOT_STAGES = ("parse", "tag")


def _label(stride: int | None) -> str:
    return "auto" if stride is None else str(stride)


def generate_logs_like(target_bytes: int, seed: int = 13) -> bytes:
    """Pipe-delimited log lines (taxi rows re-delimited — same field
    statistics, no quoting)."""
    return generate_taxi_like(target_bytes, seed=seed).replace(b",", b"|")


def time_stride(data: bytes, dialect: Dialect, stride: int | None,
                repeats: int) -> dict:
    """Best-of-``repeats`` warm-cache stage seconds for one sweep cell.

    The first round pays the k-gram table build; best-of-N then reports
    the steady state the LRU cache provides to every later parse, shard,
    and streaming partition.
    """
    clear_cache()
    metrics = MetricsRegistry()
    # Explicit strides must bring a budget their table plan fits
    # (ParseOptions rejects over-budget strides up front); the auto cell
    # keeps the production default.
    budget = {} if stride is None else {"kernel_table_budget": 1 << 30}
    parser = ParPaRawParser(ParseOptions(dialect=dialect,
                                         kernel_stride=stride, **budget),
                            metrics=metrics)
    parser.parse(data)                   # warm-up: builds + caches tables
    resolved = int(metrics.gauges["stage.stv.stride"])
    best: dict[str, float] | None = None
    for _ in range(repeats):
        totals = parser.parse(data).timer.totals()
        if best is None or sum(totals[s] for s in HOT_STAGES) \
                < sum(best[s] for s in HOT_STAGES):
            best = totals
    assert best is not None
    hot = sum(best[s] for s in HOT_STAGES)
    return {
        "stride": _label(stride),
        "resolved_stride": resolved,
        "seconds": {name: round(value, 6) for name, value in best.items()},
        "hot_seconds": round(hot, 6),
        "mb_per_s": round(len(data) / MB / hot, 2),
    }


def sweep(workloads: dict[str, tuple[Dialect, bytes]],
          repeats: int) -> list[dict]:
    rows = []
    for name, (dialect, data) in workloads.items():
        for stride in STRIDES:
            row = time_stride(data, dialect, stride, repeats)
            row["workload"] = name
            row["input_bytes"] = len(data)
            rows.append(row)
    return rows


def report_lines(rows: list[dict]) -> list[str]:
    lines = [f"{'workload':>10} {'stride':>6} {'(k)':>4} {'stv (ms)':>9} "
             f"{'tag (ms)':>9} {'stv+tag':>9} {'MB/s':>8} {'speedup':>8}"]
    for workload in dict.fromkeys(r["workload"] for r in rows):
        group = [r for r in rows if r["workload"] == workload]
        base = next(r for r in group if r["stride"] == "1")
        for r in group:
            speedup = base["hot_seconds"] / r["hot_seconds"]
            lines.append(
                f"{workload:>10} {r['stride']:>6} "
                f"{r['resolved_stride']:>4} "
                f"{r['seconds']['parse'] * 1e3:9.2f} "
                f"{r['seconds']['tag'] * 1e3:9.2f} "
                f"{r['hot_seconds'] * 1e3:9.2f} "
                f"{r['mb_per_s']:8.1f} {speedup:7.2f}x")
    lines.append("")
    lines.append("speedup = unit-stride (stv+tag) / this row's (stv+tag);")
    lines.append("(k) = the stride the sweep actually ran with (auto picks "
                 "the widest plan that fits the table budget)")
    return lines


def default_workloads(target_bytes: int) -> dict:
    return {"yelp": (NO_CR, generate_yelp_like(target_bytes, seed=7)),
            "taxi": (NO_CR, generate_taxi_like(target_bytes, seed=11)),
            "logs": (PIPE_NO_CR, generate_logs_like(target_bytes, seed=13))}


def run(workloads: dict[str, tuple[Dialect, bytes]], repeats: int,
        json_path: pathlib.Path) -> list[dict]:
    rows = sweep(workloads, repeats)
    json_path.write_text(json.dumps({
        "benchmark": "kernels_stride_sweep",
        "chunk_size": ParseOptions().chunk_size,
        "hot_stages": list(HOT_STAGES),
        "rows": rows,
    }, indent=2) + "\n")
    return rows


# -- pytest entry points ------------------------------------------------------

def test_stride_sweep(results_dir):
    workloads = default_workloads(1 * MB)
    rows = run(workloads, repeats=5, json_path=BENCH_JSON)

    from conftest import write_report
    write_report(results_dir / "kernels_stride.txt",
                 "Strided kernels: stv+tag stage time by stride (1 MB)",
                 report_lines(rows))

    # The committed artefacts carry the measured speedups; here we assert
    # conservative floors so machine noise cannot flake the gate.
    for workload in workloads:
        group = {r["stride"]: r for r in rows
                 if r["workload"] == workload}
        assert group["auto"]["hot_seconds"] \
            < group["1"]["hot_seconds"] / 1.3

    # Minimisation is what makes k=8 reachable: the logs automaton
    # collapses to one state, so auto must resolve to the full SWAR
    # stride there, while the quoted-CSV workloads stay within budget
    # at k=4.
    logs = {r["stride"]: r for r in rows if r["workload"] == "logs"}
    assert logs["auto"]["resolved_stride"] == 8
    assert logs["8"]["resolved_stride"] == 8
    yelp = {r["stride"]: r for r in rows if r["workload"] == "yelp"}
    assert yelp["auto"]["resolved_stride"] == 4


# -- standalone smoke (scripts/check.sh) --------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bytes", type=int, default=1 * MB)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", type=pathlib.Path, default=BENCH_JSON)
    args = parser.parse_args(argv)

    rows = run(default_workloads(args.bytes), args.repeats, args.out)
    print("\n".join(report_lines(rows)))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
