"""Ablation: why partition before converting? (paper §3.3)

The paper partitions all symbols by column *before* type conversion so
that "threads within a warp are executing the same instruction in
lockstep" — converting in row order would make neighbouring threads parse
different types along divergent code paths.

Simulated comparison: conversion cost with the partition (converged
warps, plus the partition step's own price) versus hypothetical row-order
conversion (divergence penalty from the warp model, no partition step).
Written to ``results/ablation_partition.txt``.
"""

import pytest

from repro.gpusim.cost_model import PipelineCostModel, WorkloadStats

from conftest import MB, write_report


def test_partition_pays_for_itself(benchmark, results_dir):
    model = PipelineCostModel()

    def compare():
        rows = {}
        for factory, name in ((WorkloadStats.yelp_like, "yelp"),
                              (WorkloadStats.taxi_like, "taxi")):
            stats = factory(512 * MB)
            rows[name] = {
                "partition": model.partition_cost(stats),
                "convert": model.convert_cost(stats),
                "convert_row_order": model.convert_cost_row_order(stats),
            }
        return rows

    rows = benchmark(compare)

    lines = [f"{'dataset':>8} {'partition':>11} {'convert':>10} "
             f"{'partition+convert':>18} {'row-order convert':>18}"]
    for name, costs in rows.items():
        with_partition = costs["partition"] + costs["convert"]
        lines.append(
            f"{name:>8} {costs['partition'] * 1e3:>10.1f}m "
            f"{costs['convert'] * 1e3:>9.1f}m "
            f"{with_partition * 1e3:>17.1f}m "
            f"{costs['convert_row_order'] * 1e3:>17.1f}m")
    lines.append("")
    lines.append("row-order conversion serialises warps across the "
                 "column-type mix (§3.3): on the conversion-heavy taxi "
                 "dataset the partition pays for itself ~5x outright; on "
                 "text-heavy yelp conversion is too small for divergence "
                 "to dominate, but the partition is still what makes the "
                 "CSS indexes (and balanced value generation) possible")
    write_report(results_dir / "ablation_partition.txt",
                 "Ablation: partitioned vs row-order conversion (512 MB)",
                 lines)

    # On the conversion-heavy taxi dataset the partition pays for itself
    # outright (divergence penalty >> the sort's cost).
    taxi = rows["taxi"]
    assert taxi["partition"] + taxi["convert"] \
        < taxi["convert_row_order"]
    assert taxi["convert_row_order"] > 4 * taxi["convert"]
