"""Shared fixtures and reporting helpers for the benchmark harness.

Every figure/table of the paper's evaluation (§5) has one module here.
Each module does two things:

1. **measures** wall-clock behaviour of the real (vectorised NumPy)
   implementation at laptop scale via ``pytest-benchmark``;
2. **regenerates the paper's artefact** at paper scale on the calibrated
   GPU model, writing the rows/series to ``benchmarks/results/*.txt`` so
   they can be compared against the paper (see EXPERIMENTS.md).

Run with: ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.workloads import (
    TAXI_SCHEMA,
    YELP_SCHEMA,
    generate_taxi_like,
    generate_yelp_like,
)

MB = 1024 ** 2
GB = 1e9

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_benchmark(benchmark, func, *args, rounds: int = 3, **kwargs):
    """Benchmark a second-scale function with a fixed, small round count.

    pytest-benchmark's auto-calibration is built for microseconds; the
    wall-clock pipeline runs take ~0.1-3 s per call, so three pedantic
    rounds give stable medians without hour-long suites.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=rounds, iterations=1,
                              warmup_rounds=1)


def write_report(path: pathlib.Path, title: str,
                 lines: list[str]) -> None:
    """Write one figure/table report file (and echo it for -s runs)."""
    content = "\n".join([title, "=" * len(title), *lines, ""])
    path.write_text(content)
    print("\n" + content)


@pytest.fixture(scope="session")
def yelp_1mb() -> bytes:
    return generate_yelp_like(1 * MB, seed=7)


@pytest.fixture(scope="session")
def taxi_1mb() -> bytes:
    return generate_taxi_like(1 * MB, seed=11)


@pytest.fixture(scope="session")
def yelp_schema():
    return YELP_SCHEMA


@pytest.fixture(scope="session")
def taxi_schema():
    return TAXI_SCHEMA
