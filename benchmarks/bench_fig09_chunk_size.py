"""Figure 9 — time per processing step as a function of the chunk size.

Paper: 512 MB of yelp/taxi on a Titan X; steps parse / scan / tag /
partition / convert over chunk sizes 4..64; best at 31 bytes; spikes at
32/48/64 from shared-memory bank conflicts; overhead explosion below
~16 bytes.

Here: wall-clock step breakdown of the real pipeline at 1 MB for a few
chunk sizes (pytest-benchmark), plus the full paper-scale sweep on the
calibrated device model, written to ``results/fig09_chunk_size.txt``.
"""

import pytest

from repro import ParPaRawParser, ParseOptions
from repro.gpusim.cost_model import PipelineCostModel, WorkloadStats

from conftest import MB, run_benchmark, write_report

STEPS = ("parse", "scan", "tag", "partition", "convert")


@pytest.mark.parametrize("chunk_size", [4, 16, 31, 64])
def test_wallclock_yelp(benchmark, yelp_1mb, yelp_schema, chunk_size):
    parser = ParPaRawParser(ParseOptions(schema=yelp_schema,
                                         chunk_size=chunk_size))
    result = run_benchmark(benchmark, parser.parse, yelp_1mb)
    assert result.num_rows > 0


@pytest.mark.parametrize("chunk_size", [4, 31])
def test_wallclock_taxi(benchmark, taxi_1mb, taxi_schema, chunk_size):
    parser = ParPaRawParser(ParseOptions(schema=taxi_schema,
                                         chunk_size=chunk_size))
    result = run_benchmark(benchmark, parser.parse, taxi_1mb)
    assert result.num_rows > 0


def test_figure9_simulated(benchmark, results_dir):
    """Regenerate both panels of Figure 9 on the device model."""
    model = PipelineCostModel()
    chunk_sizes = [4, 8, 12, 15, 16, 24, 31, 32, 40, 48, 56, 64]

    def sweep():
        rows = {}
        for factory, name in ((WorkloadStats.yelp_like, "yelp"),
                              (WorkloadStats.taxi_like, "taxi")):
            for cs in chunk_sizes:
                costs = model.step_costs(factory(512 * MB, chunk_size=cs))
                rows[(name, cs)] = costs
        return rows

    rows = benchmark(sweep)

    lines = []
    for name in ("yelp", "taxi"):
        lines.append(f"-- {name} (512 MB, simulated Titan X) --")
        lines.append(f"{'chunk':>6} " + " ".join(f"{s:>10}" for s in STEPS)
                     + f" {'total':>10}")
        for cs in chunk_sizes:
            costs = rows[(name, cs)]
            cells = " ".join(f"{getattr(costs, s) * 1e3:9.2f}m"
                             for s in STEPS)
            lines.append(f"{cs:>6} {cells} {costs.total * 1e3:9.2f}m")
        lines.append("")
    write_report(results_dir / "fig09_chunk_size.txt",
                 "Figure 9: per-step duration vs chunk size", lines)

    # Shape assertions vs the paper.
    yelp31 = rows[("yelp", 31)].total
    assert rows[("yelp", 4)].total > yelp31          # tiny-chunk overhead
    assert rows[("yelp", 32)].total > yelp31         # bank-conflict spike
    assert rows[("yelp", 64)].total > rows[("yelp", 56)].total
    assert rows[("taxi", 31)].convert > rows[("yelp", 31)].convert
