"""Figure 11 — tagging-mode breakdown (left) and skewed input (right).

Paper: the record-tagged mode is noticeably slower than inline-terminated
and vector-delimited (4-byte tags multiply memory traffic in the tag,
partition and convert steps); performance is robust even when a single
200 MB record is injected (the skew panel).

Here: wall-clock runs of all three modes on the real pipeline, a skewed
-vs-original comparison (scaled: a ~400 KB record in a 1 MB input — the
paper's 200 MB in 512 MB ratio), and the simulated paper-scale breakdown.
"""

import pytest

from repro import ParPaRawParser, ParseOptions, TaggingMode
from repro.baselines import SequentialParser
from repro.gpusim.cost_model import PipelineCostModel, WorkloadStats
from repro.workloads import generate_taxi_like, generate_yelp_like, \
    skew_dataset

from conftest import MB, run_benchmark, write_report

MODE_TAG_BYTES = {"tagged": 4.0, "inline": 0.0, "delimited": 0.125}


@pytest.mark.parametrize("mode", list(TaggingMode))
def test_wallclock_modes_yelp(benchmark, yelp_1mb, yelp_schema, mode):
    parser = ParPaRawParser(ParseOptions(schema=yelp_schema,
                                         tagging_mode=mode))
    result = run_benchmark(benchmark, parser.parse, yelp_1mb)
    assert result.num_rows > 0


@pytest.mark.parametrize("mode", list(TaggingMode))
def test_wallclock_modes_taxi(benchmark, taxi_1mb, taxi_schema, mode):
    parser = ParPaRawParser(ParseOptions(schema=taxi_schema,
                                         tagging_mode=mode))
    result = run_benchmark(benchmark, parser.parse, taxi_1mb)
    assert result.num_rows > 0


def test_wallclock_skewed(benchmark):
    """Right panel: one giant record (~40% of the input)."""
    base = generate_taxi_like(600 * 1024, seed=11)
    skewed = skew_dataset(base, giant_record_bytes=400 * 1024)
    options = ParseOptions()
    parser = ParPaRawParser(options)
    result = run_benchmark(benchmark, parser.parse, skewed)
    assert result.collaboration.device_fields >= 1
    # Robustness = still correct:
    assert result.table.to_pylist() \
        == SequentialParser(options).parse(skewed).to_pylist()


def test_figure11_simulated(benchmark, results_dir):
    model = PipelineCostModel()

    def sweep():
        out = {}
        for factory, name in ((WorkloadStats.yelp_like, "yelp"),
                              (WorkloadStats.taxi_like, "taxi")):
            for mode, tag_bytes in MODE_TAG_BYTES.items():
                out[(name, mode)] = model.step_costs(
                    factory(512 * MB, record_tag_bytes=tag_bytes))
        return out

    rows = benchmark(sweep)

    steps = ("parse", "scan", "tag", "partition", "convert")
    lines = [f"{'dataset':>8} {'mode':>10} "
             + " ".join(f"{s:>9}" for s in steps) + f" {'total':>9}"]
    for name in ("yelp", "taxi"):
        for mode in MODE_TAG_BYTES:
            costs = rows[(name, mode)]
            cells = " ".join(f"{getattr(costs, s) * 1e3:8.1f}m"
                             for s in steps)
            lines.append(f"{name:>8} {mode:>10} {cells} "
                         f"{costs.total * 1e3:8.1f}m")
    lines.append("")
    lines.append("paper: tagged slower than inline/delimited; only the "
                 "tag/partition/convert steps depend on the mode")
    write_report(results_dir / "fig11_tagging_modes.txt",
                 "Figure 11: tagging-mode time breakdown (512 MB)", lines)

    for name in ("yelp", "taxi"):
        assert rows[(name, "tagged")].total \
            > rows[(name, "delimited")].total \
            > rows[(name, "inline")].total
        assert rows[(name, "tagged")].parse \
            == pytest.approx(rows[(name, "inline")].parse)
