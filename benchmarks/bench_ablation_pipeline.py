"""Ablations over the design choices DESIGN.md calls out.

* GLOBAL vs CHUNKED tagging implementation (vectorised cumulative sums vs
  the paper's per-chunk offsets + scans);
* vectorised vs scalar type conversion;
* radix-sort digit width;
* scan algorithm choice (sequential / Hillis-Steele / Blelloch /
  decoupled look-back / vectorised).
"""

import numpy as np
import pytest

from conftest import run_benchmark

from repro import ParPaRawParser, ParseOptions, TaggingImpl
from repro.core.partition import stable_radix_sort
from repro.scan.blelloch import blelloch_scan
from repro.scan.decoupled_lookback import single_pass_scan
from repro.scan.hillis_steele import hillis_steele_scan
from repro.scan.numpy_scan import scan_transition_vectors
from repro.scan.operators import SumMonoid, TransitionComposeMonoid
from repro.scan.sequential import exclusive_scan


@pytest.mark.parametrize("impl", list(TaggingImpl))
def test_tagging_impl(benchmark, yelp_1mb, yelp_schema, impl):
    parser = ParPaRawParser(ParseOptions(schema=yelp_schema,
                                         tagging_impl=impl))
    result = run_benchmark(benchmark, parser.parse, yelp_1mb)
    assert result.num_rows > 0


@pytest.mark.parametrize("vectorized", [True, False],
                         ids=["vectorised", "scalar"])
def test_conversion_path(benchmark, taxi_1mb, taxi_schema, vectorized):
    # Scalar conversion is slow; keep the input small, cut at a record
    # boundary so no truncated field skews the reject counter.
    data = taxi_1mb[:taxi_1mb.rfind(b"\n", 0, 128 * 1024) + 1]
    parser = ParPaRawParser(ParseOptions(
        schema=taxi_schema, vectorized_conversion=vectorized))
    result = run_benchmark(benchmark, parser.parse, data)
    assert result.total_rejected_fields == 0


@pytest.mark.parametrize("radix_bits", [1, 2, 4, 8])
def test_radix_width(benchmark, radix_bits):
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 17, size=500_000).astype(np.int64)
    perm = run_benchmark(benchmark, stable_radix_sort, keys, radix_bits)
    assert np.all(np.diff(keys[perm]) >= 0)


SCAN_INPUT = list(range(2000))


@pytest.mark.parametrize("algorithm,func", [
    ("sequential", lambda: exclusive_scan(SCAN_INPUT, SumMonoid())),
    ("hillis-steele", lambda: hillis_steele_scan(SCAN_INPUT, SumMonoid(),
                                                 exclusive=True)),
    ("blelloch", lambda: blelloch_scan(SCAN_INPUT, SumMonoid())),
    ("decoupled-lookback", lambda: single_pass_scan(SCAN_INPUT,
                                                    SumMonoid(),
                                                    tile_size=128)),
], ids=["sequential", "hillis-steele", "blelloch", "decoupled-lookback"])
def test_scan_algorithms(benchmark, algorithm, func):
    out = benchmark(func)
    assert out[:3] == [0, 0, 1]


def test_stv_scan_vectorised(benchmark):
    """The production composition scan over 100k chunk STVs."""
    rng = np.random.default_rng(1)
    vectors = rng.integers(0, 6, size=(100_000, 6)).astype(np.uint8)
    out = benchmark(scan_transition_vectors, vectors)
    assert out.shape == vectors.shape


def test_stv_scan_scalar_reference(benchmark):
    """The scalar scan on the same operator (1k chunks — it is the
    reference, not the production path)."""
    rng = np.random.default_rng(1)
    rows = [tuple(int(x) for x in row)
            for row in rng.integers(0, 6, size=(1_000, 6))]
    monoid = TransitionComposeMonoid(6)
    out = benchmark(exclusive_scan, rows, monoid)
    assert len(out) == 1_000
