"""Figure 13 — end-to-end comparison against the other systems.

Paper (4.823 GB yelp / 9.073 GB taxi): ParPaRaw 0.44/0.9 s, cuDF* 7.3/9.4,
cuDF 10.5/16.5, Inst. Loading x/3.6, MonetDB 58.2/38.0, Spark 94.3/98.1,
pandas 91.3/83.4 — and Instant Loading *fails* on yelp.

Two reproductions:

* **relative wall-clock** between the implementations we actually run —
  ParPaRaw (vectorised), the sequential FSM parser, Instant Loading
  (unsafe + safe) and the quote-count parser — at 1 MB.  Absolute numbers
  are Python-speed, but who-beats-whom and the yelp-failure reproduce.
* **paper-scale table** combining the ParPaRaw streaming simulation with
  the calibrated comparator models, written to
  ``results/fig13_end_to_end.txt``.
"""

import time

import pytest

from repro import Dialect, ParPaRawParser, ParseOptions
from repro.baselines import (
    InstantLoadingParser,
    QuoteCountParser,
    SequentialParser,
    stdlib_csv_rows,
)
from repro.baselines.system_models import PAPER_SYSTEMS, modelled_duration
from repro.errors import SimulationError
from repro.gpusim.cost_model import WorkloadStats
from repro.obs import MetricsRegistry, Tracer
from repro.streaming import StreamingPipeline

from conftest import GB, MB, run_benchmark, write_report

NO_CR = Dialect(strip_carriage_return=False)
YELP_BYTES = 4.823 * GB
TAXI_BYTES = 9.073 * GB


# -- measured relative comparison -------------------------------------------

def test_parparaw_yelp(benchmark, yelp_1mb):
    parser = ParPaRawParser(ParseOptions(dialect=NO_CR))
    run_benchmark(benchmark, parser.parse, yelp_1mb)


def test_parparaw_taxi(benchmark, taxi_1mb):
    parser = ParPaRawParser(ParseOptions(dialect=NO_CR))
    run_benchmark(benchmark, parser.parse, taxi_1mb)


def test_sequential_yelp(benchmark, yelp_1mb):
    parser = SequentialParser(ParseOptions(dialect=NO_CR))
    run_benchmark(benchmark, parser.parse_rows, yelp_1mb)


def test_sequential_taxi(benchmark, taxi_1mb):
    parser = SequentialParser(ParseOptions(dialect=NO_CR))
    run_benchmark(benchmark, parser.parse_rows, taxi_1mb)


def test_instant_loading_safe_taxi(benchmark, taxi_1mb):
    parser = InstantLoadingParser(NO_CR, num_threads=8, safe_mode=True)
    run_benchmark(benchmark, parser.parse_rows, taxi_1mb)


def test_quote_count_yelp(benchmark, yelp_1mb):
    parser = QuoteCountParser(NO_CR)
    run_benchmark(benchmark, parser.parse_rows, yelp_1mb)


def test_stdlib_csv_yelp(benchmark, yelp_1mb):
    run_benchmark(benchmark, stdlib_csv_rows, yelp_1mb, NO_CR)


def test_instant_loading_unsafe_fails_on_yelp(benchmark, yelp_1mb):
    """The paper's footnote result: Inst. Loading cannot handle yelp."""
    unsafe = InstantLoadingParser(NO_CR, num_threads=8)
    rows = run_benchmark(benchmark, unsafe.parse_rows, yelp_1mb)
    reference = SequentialParser(ParseOptions(dialect=NO_CR))
    assert rows != reference.parse_rows(yelp_1mb)


# -- observability overhead ---------------------------------------------------

def test_obs_disabled_overhead(benchmark, yelp_1mb, results_dir):
    """Acceptance gate: with tracing/metrics left at their NULL defaults
    the pipeline takes the exact pre-observability path — the only
    addition is one ``enabled`` check per stage.  The bound is measured
    deterministically (guard cost x stage count vs parse time) rather
    than by differencing two noisy wall-clock runs; an enabled-path run
    is reported alongside for context.
    """
    parser = ParPaRawParser(ParseOptions(dialect=NO_CR))
    result = run_benchmark(benchmark, parser.parse, yelp_1mb)
    assert result.num_rows > 0

    # Cost of the disabled-path guard, amortised over many evaluations.
    tracer, metrics = parser.tracer, parser.metrics
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        if not tracer.enabled and not metrics.enabled:
            pass
    guard_seconds = (time.perf_counter() - t0) / n

    t0 = time.perf_counter()
    parser.parse(yelp_1mb)
    parse_seconds = time.perf_counter() - t0

    num_stages = 8                      # prune .. convert
    overhead = guard_seconds * num_stages / parse_seconds
    assert overhead <= 0.02             # the issue's <=2% requirement

    # For the report only: the fully *enabled* path, same input.
    traced = ParPaRawParser(ParseOptions(dialect=NO_CR), tracer=Tracer(),
                            metrics=MetricsRegistry())
    t0 = time.perf_counter()
    traced.parse(yelp_1mb)
    enabled_seconds = time.perf_counter() - t0

    write_report(results_dir / "obs_overhead.txt",
                 "Observability overhead (disabled tracer must be free)", [
        f"parse (obs disabled, 1 MB yelp): {parse_seconds * 1e3:8.2f} ms",
        f"parse (obs enabled,  1 MB yelp): {enabled_seconds * 1e3:8.2f} ms",
        f"disabled-path guard:             {guard_seconds * 1e9:8.1f} ns"
        f" x {num_stages} stages",
        f"disabled overhead vs parse:      {overhead * 100:8.4f} %"
        "  (bound: 2%)",
        f"spans recorded when enabled:     {len(traced.tracer.spans):8d}",
    ])


# -- paper-scale table --------------------------------------------------------

def test_figure13_simulated(benchmark, results_dir):
    pipeline = StreamingPipeline()

    def build():
        rows = {}
        rows["ParPaRaw"] = (
            min(pipeline.end_to_end_seconds(int(YELP_BYTES), p * MB,
                                            WorkloadStats.yelp_like)
                for p in (64, 128, 256)),
            min(pipeline.end_to_end_seconds(int(TAXI_BYTES), p * MB,
                                            WorkloadStats.taxi_like)
                for p in (128, 256, 512)))
        for system in PAPER_SYSTEMS:
            try:
                yelp = modelled_duration(system, YELP_BYTES, True)
            except SimulationError:
                yelp = None
            taxi = modelled_duration(system, TAXI_BYTES, False)
            rows[system] = (yelp, taxi)
        return rows

    rows = benchmark(build)

    paper = {"ParPaRaw": (0.44, 0.9), "cuDF*": (7.3, 9.4),
             "cuDF": (10.5, 16.5), "Inst. Loading": (None, 3.6),
             "MonetDB": (58.2, 38.0), "Spark": (94.3, 98.1),
             "pandas": (91.3, 83.4)}
    lines = [f"{'system':>14} {'yelp (ours)':>12} {'yelp (paper)':>13} "
             f"{'taxi (ours)':>12} {'taxi (paper)':>13}"]
    for system, (yelp, taxi) in rows.items():
        py, pt = paper[system]
        ys = f"{yelp:10.2f}s" if yelp is not None else f"{'x':>11}"
        pys = f"{py:11.2f}s" if py is not None else f"{'x':>12}"
        lines.append(f"{system:>14} {ys} {pys} {taxi:10.2f}s {pt:11.2f}s")
    lines.append("")
    lines.append("('x' = failed: incomplete handling of quoted strings)")
    write_report(results_dir / "fig13_end_to_end.txt",
                 "Figure 13: end-to-end duration comparison", lines)

    # Shape: ParPaRaw fastest; >10x over cuDF; Inst. Loading ~4x slower
    # than ParPaRaw on taxi; CPU systems >40x slower.
    yelp_ours, taxi_ours = rows["ParPaRaw"]
    assert yelp_ours < rows["cuDF"][0] / 10
    assert rows["Inst. Loading"][1] / taxi_ours > 2.5
    assert rows["MonetDB"][0] / yelp_ours > 40
    assert rows["Inst. Loading"][0] is None
