"""Scalability ablation — the paper's central claim (§1, §6).

"Being designed for scalability from the ground up with a data parallel
approach that does not require any serial work, the presented approach is
future-proof and can continue to gain speed-ups, as more cores are being
added" — versus Instant Loading's safe mode, whose sequential pre-pass
caps the speed-up (Amdahl).

Regenerated here on the device model: on-GPU parsing time across scaled
devices (0.25x .. 4x Titan X cores, plus the V100 the intro cites), and
the Amdahl ceiling of the safe-mode baseline measured from its real
serial fraction on yelp-like data.  Written to
``results/ablation_scaling.txt``.
"""

import os

import pytest

from repro import ParPaRawParser, ParseOptions
from repro.baselines import InstantLoadingParser
from repro.dfa.dialects import Dialect
from repro.exec import SerialExecutor, ShardedExecutor
from repro.gpusim.cost_model import PipelineCostModel, WorkloadStats
from repro.gpusim.device import TITAN_X_PASCAL, V100
from repro.workloads import YELP_SCHEMA, generate_yelp_like

from conftest import MB, write_report


def test_core_scaling(benchmark, results_dir):
    stats = WorkloadStats.yelp_like(512 * MB)

    def sweep():
        rows = {}
        for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
            model = PipelineCostModel(TITAN_X_PASCAL.scaled(factor))
            rows[factor] = model.total_seconds(stats)
        rows["V100"] = PipelineCostModel(V100).total_seconds(stats)
        return rows

    rows = benchmark(sweep)

    base = rows[1.0]
    lines = [f"{'device':>12} {'cores':>7} {'time':>9} {'speedup':>8}"]
    for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
        device = TITAN_X_PASCAL.scaled(factor)
        lines.append(f"{factor:>10.2g}x {device.num_cores:>7} "
                     f"{rows[factor] * 1e3:>8.1f}m "
                     f"{base / rows[factor]:>8.2f}")
    lines.append(f"{'V100':>12} {V100.num_cores:>7} "
                 f"{rows['V100'] * 1e3:>8.1f}m "
                 f"{base / rows['V100']:>8.2f}")
    write_report(results_dir / "ablation_scaling.txt",
                 "Scaling ablation: on-GPU time vs core count "
                 "(yelp 512 MB)", lines)

    # More cores -> strictly faster, approaching compute-proportional
    # gains while bandwidth-bound steps scale with the memory system.
    assert rows[0.25] > rows[0.5] > rows[1.0] > rows[2.0] > rows[4.0]
    assert base / rows[4.0] > 2.0           # substantial, sustained gain
    assert rows["V100"] < base              # the §1 5120-core part wins


def test_worker_scaling(benchmark, results_dir):
    """CPU analogue of the core-count sweep: the sharded executor.

    The same hierarchy the paper builds for GPU chunks (per-chunk STVs
    combined by a composition scan) is lifted one level to CPU shards,
    so the STV and tagging steps run embarrassingly parallel across a
    process pool.  Sweeps worker counts over a 64 MB yelp-like input and
    records the per-step breakdown; written to
    ``results/ablation_workers.txt``.
    """
    data = generate_yelp_like(64 * MB)
    options = ParseOptions(schema=YELP_SCHEMA)
    worker_counts = (1, 2, 4, 8)

    def sweep():
        rows = {}
        for workers in worker_counts:
            executor = SerialExecutor() if workers == 1 \
                else ShardedExecutor(workers=workers)
            try:
                result = ParPaRawParser(options,
                                        executor=executor).parse(data)
            finally:
                executor.close()
            rows[workers] = (result.step_seconds(), result.num_rows)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1,
                              warmup_rounds=0)

    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    base_steps, base_rows = rows[1]
    sharded_steps = ("parse", "scan", "tag")
    lines = [f"host CPUs available: {cpus}", ""]
    lines.append(f"{'workers':>8} {'parse':>8} {'scan':>8} {'tag':>8} "
                 f"{'total':>8} {'speedup':>8}")
    for workers in worker_counts:
        steps, num_rows = rows[workers]
        assert num_rows == base_rows
        total = sum(steps.values())
        lines.append(
            f"{workers:>8} "
            + " ".join(f"{steps[s] * 1e3:>7.0f}m" for s in sharded_steps)
            + f" {total * 1e3:>7.0f}m"
            + f" {sum(base_steps.values()) / total:>8.2f}")
    lines.append("")
    lines.append("sharded steps: parse (per-shard STVs), scan (composite "
                 "composition scan), tag (per-shard tagging + merge); "
                 "validate/partition/convert stay single-process.")
    write_report(results_dir / "ablation_workers.txt",
                 "Worker-count ablation: sharded executor over 64 MB "
                 "yelp-like data", lines)

    # Scaling of the data-parallel steps can only show when the host
    # actually has cores to run the shards on.
    if cpus >= 2:
        one = sum(rows[1][0][s] for s in sharded_steps)
        two = sum(rows[2][0][s] for s in sharded_steps)
        assert two < one


def test_amdahl_ceiling_of_safe_mode(benchmark, results_dir, yelp_1mb):
    """The counterpoint: Instant Loading's safe mode cannot scale."""
    parser = InstantLoadingParser(Dialect(strip_carriage_return=False),
                                  num_threads=8, safe_mode=True)

    def measure():
        parser.parse_rows(yelp_1mb)
        return parser.serial_fraction()

    serial = benchmark.pedantic(measure, rounds=2, iterations=1,
                                warmup_rounds=0)
    lines = [f"serial fraction on yelp-like data: {serial:.2%}",
             ""]
    for cores in (4, 32, 3584):
        lines.append(f"Amdahl speed-up bound on {cores:>5} cores: "
                     f"{parser.amdahl_speedup(cores):6.2f}x")
    lines.append("")
    lines.append("ParPaRaw performs zero serial work; its bound is the "
                 "core count itself (paper contribution 1).")
    write_report(results_dir / "ablation_amdahl.txt",
                 "Amdahl ceiling of the safe-mode baseline", lines)

    assert serial > 0.3
    assert parser.amdahl_speedup(3584) < 4.0
