"""Table 2 — branchless SWAR symbol matching.

Replays the paper's worked example (reading ',' against LU-registers
packing ``\\t | , " \\n``) step by step, writes the trace to
``results/table2_swar.txt``, and benchmarks the SWAR matcher against the
256-entry lookup table it replaces.
"""

import numpy as np
import pytest

from repro.dfa import rfc4180_dfa
from repro.gpusim.swar import SwarMatcher

from conftest import write_report


def test_table2_report(benchmark, results_dir):
    dfa = rfc4180_dfa()
    matcher = SwarMatcher(dfa)
    trace = benchmark(matcher.match_index, ord(","), True)

    lines = [
        f"read symbol: ',' (0x2C), s-register = {trace.s_register:#010x}",
    ]
    for r, lu in enumerate(matcher.lu_registers):
        lines.append(f"LU[{r}] = {lu:#010x}  xor = {trace.xors[r]:#010x}  "
                     f"H(x) = {trace.masks[r]:#010x}  "
                     f"idx = {trace.indexes[r]:#x}")
    lines.append(f"matched flat index = {trace.matched_index:#x} -> "
                 f"group {matcher.group_of(ord(','))} "
                 f"({dfa.group_names[matcher.group_of(ord(','))]})")
    lines.append("")
    lines.append("H(x) = ((x - 0x01010101) & ~x & 0x80808080)  "
                 "(Mycroft 1987)")
    write_report(results_dir / "table2_swar.txt",
                 "Table 2: SWAR symbol-index identification", lines)

    assert matcher.group_of(ord(",")) == dfa.group_of(ord(","))


def test_swar_scalar(benchmark):
    matcher = SwarMatcher(rfc4180_dfa())

    def match_all():
        return [matcher.group_of(b) for b in range(256)]

    groups = benchmark(match_all)
    dfa = rfc4180_dfa()
    assert groups == [dfa.group_of(b) for b in range(256)]


def test_swar_vectorised(benchmark, yelp_1mb):
    matcher = SwarMatcher(rfc4180_dfa())
    data = np.frombuffer(yelp_1mb, dtype=np.uint8)
    out = benchmark(matcher.groups_of, data)
    assert out.shape == data.shape


def test_lookup_table_vectorised(benchmark, yelp_1mb):
    """The alternative the paper rejects for register pressure reasons —
    on this substrate it is the faster path, which is fine: the point of
    SWAR is fitting in registers, not raw speed here."""
    dfa = rfc4180_dfa()
    data = np.frombuffer(yelp_1mb, dtype=np.uint8)
    out = benchmark(dfa.groups_of, data)
    assert out.shape == data.shape
