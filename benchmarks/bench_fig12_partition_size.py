"""Figure 12 — end-to-end duration as a function of the partition size.

Paper: streamed end-to-end time falls with partition size, bottoms out at
128 MB (yelp, 0.44 s for 4.8 GB) / 256 MB (taxi), then grows again because
the un-overlapped first transfer and last return grow with the partition.

Here: the working StreamingParser measured at several partition sizes
(wall-clock, laptop scale — the *functional* counterpart), plus the
paper-scale U-curve from the Figure 7 pipeline simulation.
"""

import pytest

from repro import ParseOptions, StreamingParser
from repro.gpusim.cost_model import WorkloadStats
from repro.obs import MetricsRegistry, validate_chrome_trace, write_chrome_trace
from repro.streaming import StreamingPipeline
from repro.workloads import generate_yelp_like

from conftest import GB, MB, run_benchmark, write_report


@pytest.mark.parametrize("partition_kb", [16, 64, 256])
def test_wallclock_streaming(benchmark, yelp_schema, partition_kb):
    data = generate_yelp_like(512 * 1024, seed=7)
    options = ParseOptions(schema=yelp_schema)
    partition = partition_kb * 1024

    metrics = MetricsRegistry()

    def run():
        metrics.clear()
        stream = StreamingParser(options, metrics=metrics)
        for start in range(0, len(data), partition):
            stream.feed(data[start:start + partition])
        return stream.finish()

    table = run_benchmark(benchmark, run)
    assert table.num_rows > 0
    # Embed the merged pipeline metrics in the benchmark record so the
    # saved .json results carry the per-partition-size accounting.
    benchmark.extra_info["metrics"] = metrics.to_dict()
    assert metrics.counters["stream.partitions"] == \
        -(-len(data) // partition)


def test_figure12_simulated(benchmark, results_dir):
    pipeline = StreamingPipeline()
    partitions_mb = [4, 8, 16, 32, 64, 128, 256, 512]

    def sweep():
        out = {}
        for factory, name, total in (
                (WorkloadStats.yelp_like, "yelp", 4.823 * GB),
                (WorkloadStats.taxi_like, "taxi", 9.073 * GB)):
            out[name] = [pipeline.end_to_end_seconds(int(total), p * MB,
                                                     factory)
                         for p in partitions_mb]
        return out

    curves = benchmark(sweep)

    lines = [f"{'partition':>10} {'yelp 4.8GB':>11} {'taxi 9.1GB':>11}"]
    for i, p in enumerate(partitions_mb):
        lines.append(f"{p:>8}MB {curves['yelp'][i]:>10.3f}s "
                     f"{curves['taxi'][i]:>10.3f}s")
    lines.append("")
    lines.append("paper: yelp best ~0.44s near 128MB; taxi best ~0.9s "
                 "near 256MB; U-shape on both")
    write_report(results_dir / "fig12_partition_size.txt",
                 "Figure 12: end-to-end duration vs partition size",
                 lines)

    for name in ("yelp", "taxi"):
        series = curves[name]
        best = min(range(len(series)), key=series.__getitem__)
        assert 2 <= best <= 6          # optimum in the 16-256 MB region
        assert series[0] > series[best]
        assert series[-1] > series[best]
    assert 0.40 < min(curves["yelp"]) < 0.60
    assert 0.75 < min(curves["taxi"]) < 1.40

    # Export the optimal yelp schedule as a Chrome trace so the overlap
    # structure behind the U-curve minimum can be inspected in Perfetto.
    best_mb = partitions_mb[min(range(len(partitions_mb)),
                                key=curves["yelp"].__getitem__)]
    schedule = pipeline.simulate(int(4.823 * GB), best_mb * MB,
                                 WorkloadStats.yelp_like)
    trace_path = results_dir / "fig12_best_schedule_trace.json"
    write_chrome_trace(trace_path, schedule.spans())
    assert validate_chrome_trace(schedule.to_chrome_trace()) == []
